//! The 60-bug dataset.
//!
//! Every aggregate stated in the paper's prose is reproduced exactly (and
//! asserted by this crate's tests): 60 bugs = 22 deadlocks + 38 atomicity
//! violations; 43 TM-fixable (12 DL + 31 AV); 9 deadlocks fixed by Recipe
//! 1 (6 of them simplified by Recipe 3, 3 non-preemptible), 3 more only by
//! Recipe 3; 22 AVs with completely missing synchronization, 17 of them
//! fixable by Recipe 2, 12 with a single atomic block (9 easy + 3 medium);
//! downcalls 5×CV (all Mozilla), 2×retry, 8×I/O, 7×long-action; 34 TM
//! fixes preferred; 18 fixes implemented (7 DL + 11 AV); 5 unfixable
//! deadlocks span non-preemptible multi-module code.
//!
//! Bug IDs that the paper names are used verbatim (`synthetic_id: false`);
//! the rest of the per-bug table is not public, so the remaining entries
//! are reconstructed to be consistent with every stated aggregate
//! (`synthetic_id: true`). See DESIGN.md §2.

use txfix_core::{App, BugChars, BugKind, BugRecord, DevFix, Difficulty, Downcalls, MissingSync};

/// Scenario keys for the 18 implemented fixes (see [`crate::scenarios`]).
pub mod keys {
    /// Mozilla-I: SpiderMonkey title-locking deadlock (§5.4.1).
    pub const MOZILLA_I: &str = "mozilla_i";
    /// Mozilla#54743: cache vs. atom-table AB-BA deadlock.
    pub const DL_CACHE_ATOMTABLE: &str = "dl_cache_atomtable";
    /// Mozilla#60303: three-lock cycle.
    pub const DL_THREE_LOCK_CYCLE: &str = "dl_three_lock_cycle";
    /// Mozilla#123930: deadlock the developers fixed by introducing a race.
    pub const DL_INTENTIONAL_RACE: &str = "dl_intentional_race";
    /// Apache-I: listener/worker lock-and-wait deadlock (§5.4.2).
    pub const APACHE_I: &str = "apache_i";
    /// Apache lock-order inversion fixable locally (the dev-preferred one).
    pub const DL_LOCAL_LOCK_ORDER: &str = "dl_local_lock_order";
    /// MySQL storage-engine table-pair lock inversion.
    pub const DL_MYSQL_TABLE_PAIR: &str = "dl_mysql_table_pair";
    /// Mozilla#133773/#18025: fix used the wrong lock.
    pub const AV_WRONG_LOCK: &str = "av_wrong_lock";
    /// Mozilla: reference-count check/decrement race.
    pub const AV_REFCOUNT_RACE: &str = "av_refcount_race";
    /// Mozilla: lazily-initialized singleton double initialization.
    pub const AV_LAZY_INIT: &str = "av_lazy_init";
    /// Mozilla: partially synchronized producer with condition variable.
    pub const AV_CV_PARTIAL: &str = "av_cv_partial";
    /// Apache#25520: scoreboard slot race.
    pub const AV_SCOREBOARD: &str = "av_scoreboard";
    /// Apache-II: buffered log writer (§5.4.3).
    pub const APACHE_II: &str = "apache_ii";
    /// Apache: two-field invariant updated non-atomically.
    pub const AV_PAIR_INVARIANT: &str = "av_pair_invariant";
    /// Apache: request/log sequence number race (deferred I/O).
    pub const AV_LOG_SEQUENCE: &str = "av_log_sequence";
    /// MySQL: statistics counters updated without the intended lock.
    pub const AV_STATS_RACE: &str = "av_stats_race";
    /// MySQL-I: delete-all vs. binlog ordering (§5.4.4).
    pub const MYSQL_I: &str = "mysql_i";
    /// MySQL#16582: hand-rolled conflict-check/abort/redo mechanism.
    pub const AV_ADHOC_RETRY: &str = "av_adhoc_retry";

    /// All 18 keys.
    pub const ALL: [&str; 18] = [
        MOZILLA_I,
        DL_CACHE_ATOMTABLE,
        DL_THREE_LOCK_CYCLE,
        DL_INTENTIONAL_RACE,
        APACHE_I,
        DL_LOCAL_LOCK_ORDER,
        DL_MYSQL_TABLE_PAIR,
        AV_WRONG_LOCK,
        AV_REFCOUNT_RACE,
        AV_LAZY_INIT,
        AV_CV_PARTIAL,
        AV_SCOREBOARD,
        APACHE_II,
        AV_PAIR_INVARIANT,
        AV_LOG_SEQUENCE,
        AV_STATS_RACE,
        MYSQL_I,
        AV_ADHOC_RETRY,
    ];
}

const NO_DC: Downcalls = Downcalls::NONE;

#[allow(clippy::too_many_arguments)]
fn rec(
    id: &'static str,
    app: App,
    kind: BugKind,
    synthetic_id: bool,
    summary: &'static str,
    chars: BugChars,
    dev: (Difficulty, u32, u8),
    scenario: Option<&'static str>,
) -> BugRecord {
    BugRecord {
        id,
        app,
        kind,
        synthetic_id,
        summary,
        chars,
        dev_fix: DevFix { difficulty: dev.0, loc: dev.1, attempts: dev.2 },
        scenario,
    }
}

/// The full 60-bug dataset, in stable order (deadlocks first).
pub fn all_bugs() -> Vec<BugRecord> {
    use App::{Apache, Mozilla, MySql};
    use BugKind::{AtomicityViolation as Av, Deadlock as Dl};
    use Difficulty::{Easy, Hard, Medium};

    let dc = |condvar: bool, retry: bool, io: bool, long_action: bool, library: bool| Downcalls {
        condvar,
        retry,
        io,
        long_action,
        library,
    };

    vec![
        // ---------------- Mozilla deadlocks (13) -------------------------
        rec(
            "Mozilla#49816",
            Mozilla,
            Dl,
            true,
            "SpiderMonkey title-locking: claim object scope while holding setSlotLock (Mozilla-I)",
            BugChars {
                lock_cycle: true,
                fix_sites: 15,
                downcalls: dc(false, false, false, true, true),
                fix_extra_benefits: true, // retires ownership protocol, fixes 4 later bugs
                ..Default::default()
            },
            (Hard, 110, 2),
            Some(keys::MOZILLA_I),
        ),
        rec(
            "Mozilla#54743",
            Mozilla,
            Dl,
            false,
            "cache lock vs. atom-table lock acquired in opposite orders",
            BugChars { lock_cycle: true, fix_sites: 4, ..Default::default() },
            (Hard, 60, 3),
            Some(keys::DL_CACHE_ATOMTABLE),
        ),
        rec(
            "Mozilla#60303",
            Mozilla,
            Dl,
            false,
            "three locks acquired in a rotating order across threads",
            BugChars { lock_cycle: true, fix_sites: 5, ..Default::default() },
            (Hard, 45, 2),
            Some(keys::DL_THREE_LOCK_CYCLE),
        ),
        rec(
            "Mozilla#90994",
            Mozilla,
            Dl,
            false,
            "lock pair held across file I/O (non-preemptible section)",
            BugChars {
                lock_cycle: true,
                non_preemptible: true,
                fix_sites: 8,
                downcalls: dc(false, false, true, false, false),
                ..Default::default()
            },
            (Hard, 70, 2),
            None,
        ),
        rec(
            "Mozilla#123930",
            Mozilla,
            Dl,
            false,
            "deadlock the developers fixed by intentionally introducing a data race",
            BugChars { lock_cycle: true, fix_sites: 2, ..Default::default() },
            (Hard, 25, 2),
            Some(keys::DL_INTENTIONAL_RACE),
        ),
        rec(
            "Mozilla#79054",
            Mozilla,
            Dl,
            false,
            "wait on a condition variable with a second lock held",
            BugChars {
                cv_wait: true,
                fix_sites: 3,
                downcalls: dc(true, false, false, false, false),
                ..Default::default()
            },
            (Hard, 55, 3),
            None,
        ),
        rec(
            "Mozilla#110137",
            Mozilla,
            Dl,
            true,
            "condition wait that must become an abort-and-retry (no commit-before-wait fit)",
            BugChars {
                cv_wait: true,
                fix_sites: 2,
                downcalls: dc(false, true, false, false, false),
                fix_extra_benefits: true,
                ..Default::default()
            },
            (Hard, 40, 2),
            None,
        ),
        rec(
            "Mozilla#65146",
            Mozilla,
            Dl,
            false,
            "nested monitor lockout: waiter can only be signalled by a thread needing its lock",
            BugChars { cv_wait: true, two_way_communication: true, ..Default::default() },
            (Hard, 80, 3),
            None,
        ),
        rec(
            "Mozilla#88331",
            Mozilla,
            Dl,
            true,
            "two-way handshake between decoder and consumer threads",
            BugChars { cv_wait: true, two_way_communication: true, ..Default::default() },
            (Hard, 65, 2),
            None,
        ),
        rec(
            "Mozilla#27486",
            Mozilla,
            Dl,
            false,
            "thread waits for a signal from a component that was already destroyed",
            BugChars { design_flaw: true, ..Default::default() },
            (Medium, 30, 1),
            None,
        ),
        rec(
            "Mozilla#102764",
            Mozilla,
            Dl,
            true,
            "shutdown path waits on a thread pool that was never started",
            BugChars { design_flaw: true, ..Default::default() },
            (Hard, 50, 2),
            None,
        ),
        rec(
            "Mozilla#71035",
            Mozilla,
            Dl,
            true,
            "lock cycle across NSPR and layout modules with irreversible effects held",
            BugChars {
                lock_cycle: true,
                multi_module: true,
                non_preemptible: true,
                ..Default::default()
            },
            (Hard, 90, 2),
            None,
        ),
        rec(
            "Mozilla#143981",
            Mozilla,
            Dl,
            true,
            "lock cycle through a third-party plugin that cannot be modified",
            BugChars {
                lock_cycle: true,
                multi_module: true,
                non_preemptible: true,
                ..Default::default()
            },
            (Hard, 40, 1),
            None,
        ),
        // ---------------- Apache deadlocks (5) ---------------------------
        rec(
            "Apache#42031",
            Apache,
            Dl,
            true,
            "listener holds timeout mutex while waiting for an idle worker (Apache-I)",
            BugChars {
                cv_wait: true,
                fix_sites: 2,
                downcalls: dc(false, true, false, false, false),
                fix_extra_benefits: true, // no compensation code needed
                ..Default::default()
            },
            (Hard, 32, 4),
            Some(keys::APACHE_I),
        ),
        rec(
            "Apache#11600",
            Apache,
            Dl,
            true,
            "two locks acquired out of order within a single function",
            BugChars { lock_cycle: true, fix_sites: 2, ..Default::default() },
            (Easy, 6, 1),
            Some(keys::DL_LOCAL_LOCK_ORDER),
        ),
        rec(
            "Apache#33447",
            Apache,
            Dl,
            true,
            "mutex pair held across a cache rebuild (cannot roll back)",
            BugChars {
                lock_cycle: true,
                non_preemptible: true,
                fix_sites: 5,
                ..Default::default()
            },
            (Hard, 40, 2),
            None,
        ),
        rec(
            "Apache#52110",
            Apache,
            Dl,
            true,
            "cycle between core and mod_ssl locks around blocking I/O",
            BugChars {
                lock_cycle: true,
                multi_module: true,
                non_preemptible: true,
                ..Default::default()
            },
            (Hard, 55, 3),
            None,
        ),
        rec(
            "Apache#39814",
            Apache,
            Dl,
            true,
            "cycle between APR pools and module cleanup handlers",
            BugChars {
                lock_cycle: true,
                multi_module: true,
                non_preemptible: true,
                ..Default::default()
            },
            (Medium, 25, 1),
            None,
        ),
        // ---------------- MySQL deadlocks (4) ----------------------------
        rec(
            "MySQL#3155",
            MySql,
            Dl,
            true,
            "two tables locked in query order vs. index order",
            BugChars { lock_cycle: true, fix_sites: 3, ..Default::default() },
            (Medium, 20, 1),
            Some(keys::DL_MYSQL_TABLE_PAIR),
        ),
        rec(
            "MySQL#19278",
            MySql,
            Dl,
            true,
            "table lock pair held across binlog flush (non-preemptible)",
            BugChars {
                lock_cycle: true,
                non_preemptible: true,
                fix_sites: 6,
                downcalls: dc(false, false, true, false, false),
                ..Default::default()
            },
            (Medium, 30, 1),
            None,
        ),
        rec(
            "MySQL#28771",
            MySql,
            Dl,
            true,
            "cycle spanning server core and storage-engine plugin locks",
            BugChars {
                lock_cycle: true,
                multi_module: true,
                non_preemptible: true,
                ..Default::default()
            },
            (Hard, 60, 2),
            None,
        ),
        rec(
            "MySQL#44062",
            MySql,
            Dl,
            true,
            "replication thread waits for an event purged at startup",
            BugChars { design_flaw: true, ..Default::default() },
            (Hard, 45, 2),
            None,
        ),
        // ---------------- Mozilla atomicity violations (20) --------------
        rec(
            "Mozilla#133773",
            Mozilla,
            Av,
            false,
            "atomicity fix from Mozilla#18025 used the wrong lock; found four years later",
            BugChars {
                missing_sync: Some(MissingSync::WrongLock),
                single_atomic_block: true,
                fix_sites: 2,
                downcalls: NO_DC,
                ..Default::default()
            },
            (Medium, 18, 2),
            Some(keys::AV_WRONG_LOCK),
        ),
        rec(
            "Mozilla#18025",
            Mozilla,
            Av,
            false,
            "necko cache field guarded by the wrong lock",
            BugChars {
                missing_sync: Some(MissingSync::WrongLock),
                single_atomic_block: true,
                fix_sites: 1,
                downcalls: NO_DC,
                ..Default::default()
            },
            (Medium, 12, 1),
            None,
        ),
        rec(
            "Mozilla#73291",
            Mozilla,
            Av,
            true,
            "reference count checked then decremented non-atomically",
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                single_atomic_block: true,
                fix_sites: 1,
                downcalls: NO_DC,
                ..Default::default()
            },
            (Medium, 15, 1),
            Some(keys::AV_REFCOUNT_RACE),
        ),
        rec(
            "Mozilla#52271",
            Mozilla,
            Av,
            true,
            "lazily initialized service constructed twice under races",
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                single_atomic_block: true,
                fix_sites: 1,
                downcalls: NO_DC,
                ..Default::default()
            },
            (Hard, 35, 2),
            Some(keys::AV_LAZY_INIT),
        ),
        rec(
            "Mozilla#64508",
            Mozilla,
            Av,
            true,
            "history entry list re-read after unlocked window",
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                single_atomic_block: true,
                fix_sites: 2,
                downcalls: NO_DC,
                ..Default::default()
            },
            (Medium, 22, 1),
            None,
        ),
        rec(
            "Mozilla#81204",
            Mozilla,
            Av,
            true,
            "download progress file updated by two threads without order",
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                single_atomic_block: true,
                fix_sites: 1,
                downcalls: dc(false, false, true, false, false),
                ..Default::default()
            },
            (Medium, 16, 1),
            None,
        ),
        rec(
            "Mozilla#97612",
            Mozilla,
            Av,
            true,
            "atomic block must call into the necko module transactionally",
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                single_atomic_block: true,
                fix_sites: 1,
                downcalls: dc(false, false, false, false, true),
                ..Default::default()
            },
            (Hard, 40, 2),
            None,
        ),
        rec(
            "Mozilla#105110",
            Mozilla,
            Av,
            true,
            "single block but spans a JS GC trigger (library + long action)",
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                single_atomic_block: true,
                fix_sites: 1,
                downcalls: dc(false, false, false, true, true),
                ..Default::default()
            },
            (Medium, 28, 1),
            None,
        ),
        rec(
            "Mozilla#120358",
            Mozilla,
            Av,
            true,
            "six call sites mutate the image cache without synchronization",
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                fix_sites: 6,
                downcalls: dc(false, false, false, true, false),
                ..Default::default()
            },
            (Hard, 60, 2),
            None,
        ),
        rec(
            "Mozilla#58229",
            Mozilla,
            Av,
            true,
            "twelve scattered accessors of the security context (very long sections)",
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                fix_sites: 12,
                downcalls: dc(false, false, false, true, false),
                ..Default::default()
            },
            (Hard, 95, 3),
            None,
        ),
        rec(
            "Mozilla#86455",
            Mozilla,
            Av,
            true,
            "five timer-callback sites race on the shared timer wheel",
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                fix_sites: 5,
                downcalls: NO_DC,
                ..Default::default()
            },
            (Hard, 50, 2),
            None,
        ),
        rec(
            "Mozilla#91106",
            Mozilla,
            Av,
            true,
            "producer updates queue outside the consumer's lock; wait inside fix (CV)",
            BugChars {
                missing_sync: Some(MissingSync::Partial),
                single_atomic_block: true,
                fix_sites: 2,
                downcalls: dc(true, false, false, false, false),
                ..Default::default()
            },
            (Hard, 45, 2),
            Some(keys::AV_CV_PARTIAL),
        ),
        rec(
            "Mozilla#77690",
            Mozilla,
            Av,
            true,
            "event queue drained while observer registration is mid-update (CV)",
            BugChars {
                missing_sync: Some(MissingSync::Partial),
                single_atomic_block: true,
                fix_sites: 3,
                downcalls: dc(true, false, false, false, false),
                ..Default::default()
            },
            (Hard, 38, 2),
            None,
        ),
        rec(
            "Mozilla#99416",
            Mozilla,
            Av,
            true,
            "notification mask read outside the monitor that signals it (CV)",
            BugChars {
                missing_sync: Some(MissingSync::Partial),
                single_atomic_block: true,
                fix_sites: 2,
                downcalls: dc(true, false, false, false, false),
                ..Default::default()
            },
            (Medium, 20, 1),
            None,
        ),
        rec(
            "Mozilla#113552",
            Mozilla,
            Av,
            true,
            "paint suppression flag raced against a long reflow (CV + long action)",
            BugChars {
                missing_sync: Some(MissingSync::Partial),
                single_atomic_block: true,
                fix_sites: 2,
                downcalls: dc(true, false, false, true, false),
                ..Default::default()
            },
            (Hard, 42, 2),
            None,
        ),
        rec(
            "Mozilla#69808",
            Mozilla,
            Av,
            true,
            "hand-rolled ownership flag on the DNS record raced with eviction",
            BugChars {
                missing_sync: Some(MissingSync::AdHoc),
                fix_sites: 3,
                downcalls: NO_DC,
                ..Default::default()
            },
            (Hard, 48, 2),
            None,
        ),
        rec(
            "Mozilla#19421",
            Mozilla,
            Av,
            false,
            "lock held while loading a URL, callback fires on completion (long latency)",
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                long_latency_callback: true,
                ..Default::default()
            },
            (Hard, 70, 2),
            None,
        ),
        rec(
            "Mozilla#124755",
            Mozilla,
            Av,
            true,
            "profile migration must run atomically AND exactly once",
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                exactly_once: true,
                ..Default::default()
            },
            (Medium, 26, 1),
            None,
        ),
        rec(
            "Mozilla#72965",
            Mozilla,
            Av,
            false,
            "lost notifications waiting for I/O to arrive (kernel/process atomicity)",
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                cross_process_io: true,
                ..Default::default()
            },
            (Hard, 52, 3),
            None,
        ),
        rec(
            "Mozilla#135277",
            Mozilla,
            Av,
            true,
            "favicon fetch result applied atomically with a network round trip",
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                long_latency_callback: true,
                ..Default::default()
            },
            (Medium, 24, 1),
            None,
        ),
        // ---------------- Apache atomicity violations (9) ----------------
        rec(
            "Apache#25520",
            Apache,
            Av,
            false,
            "scoreboard slot updated without a lock; fix needed lock declarations in two other places",
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                single_atomic_block: true,
                fix_sites: 1,
                downcalls: NO_DC,
                ..Default::default()
            },
            (Medium, 20, 1),
            Some(keys::AV_SCOREBOARD),
        ),
        rec(
            "Apache#42361",
            Apache,
            Av,
            true,
            "ap_buffered_log_writer: two threads advance outputCount concurrently (Apache-II)",
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                single_atomic_block: true,
                fix_sites: 1,
                downcalls: dc(false, false, true, false, false),
                ..Default::default()
            },
            (Medium, 20, 1),
            Some(keys::APACHE_II),
        ),
        rec(
            "Apache#31017",
            Apache,
            Av,
            true,
            "request count and byte count updated as two independent stores",
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                single_atomic_block: true,
                fix_sites: 2,
                downcalls: NO_DC,
                ..Default::default()
            },
            (Hard, 30, 2),
            Some(keys::AV_PAIR_INVARIANT),
        ),
        rec(
            "Apache#48550",
            Apache,
            Av,
            true,
            "atomic block calls into mod_cache helpers (library downcall)",
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                single_atomic_block: true,
                fix_sites: 1,
                downcalls: dc(false, false, false, false, true),
                ..Default::default()
            },
            (Hard, 33, 2),
            None,
        ),
        rec(
            "Apache#36220",
            Apache,
            Av,
            true,
            "seven sites update the connection table; flush interleaves (multi-block, I/O)",
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                fix_sites: 7,
                downcalls: dc(false, false, true, false, false),
                ..Default::default()
            },
            (Medium, 35, 1),
            None,
        ),
        rec(
            "Apache#29850",
            Apache,
            Av,
            true,
            "log sequence number advanced outside the writer's critical section",
            BugChars {
                missing_sync: Some(MissingSync::Partial),
                single_atomic_block: true,
                fix_sites: 2,
                downcalls: dc(false, false, true, false, false),
                ..Default::default()
            },
            (Medium, 22, 1),
            Some(keys::AV_LOG_SEQUENCE),
        ),
        rec(
            "Apache#40945",
            Apache,
            Av,
            true,
            "worker recycling path skips the queue lock taken everywhere else",
            BugChars {
                missing_sync: Some(MissingSync::Partial),
                fix_sites: 4,
                downcalls: NO_DC,
                ..Default::default()
            },
            (Medium, 28, 1),
            None,
        ),
        rec(
            "Apache#23796",
            Apache,
            Av,
            true,
            "config reload guarded by the pool lock instead of the vhost lock",
            BugChars {
                missing_sync: Some(MissingSync::WrongLock),
                single_atomic_block: true,
                fix_sites: 1,
                downcalls: NO_DC,
                ..Default::default()
            },
            (Medium, 14, 1),
            None,
        ),
        rec(
            "Apache#7617",
            Apache,
            Av,
            false,
            "two processes race reading from the same pipe (cross-process I/O atomicity)",
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                cross_process_io: true,
                ..Default::default()
            },
            (Hard, 44, 2),
            None,
        ),
        // ---------------- MySQL atomicity violations (9) -----------------
        rec(
            "MySQL#12228",
            MySql,
            Av,
            true,
            "handler statistics counters updated with no synchronization",
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                single_atomic_block: true,
                fix_sites: 1,
                downcalls: NO_DC,
                ..Default::default()
            },
            (Medium, 18, 1),
            Some(keys::AV_STATS_RACE),
        ),
        rec(
            "MySQL#25073",
            MySql,
            Av,
            true,
            "query-cache invalidation races with concurrent lookup",
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                single_atomic_block: true,
                fix_sites: 2,
                downcalls: NO_DC,
                ..Default::default()
            },
            (Easy, 10, 1),
            None,
        ),
        rec(
            "MySQL#30591",
            MySql,
            Av,
            true,
            "five key-cache touchpoints race with the flush thread (I/O + long scan)",
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                fix_sites: 5,
                downcalls: dc(false, false, true, true, false),
                ..Default::default()
            },
            (Hard, 55, 2),
            None,
        ),
        rec(
            "MySQL#9953",
            MySql,
            Av,
            true,
            "optimized DELETE releases lock_open before writing the binlog (MySQL-I)",
            BugChars {
                missing_sync: Some(MissingSync::Partial),
                single_atomic_block: true,
                fix_sites: 1,
                downcalls: dc(false, false, true, false, false),
                ..Default::default()
            },
            (Hard, 103, 1),
            Some(keys::MYSQL_I),
        ),
        rec(
            "MySQL#16582",
            MySql,
            Av,
            false,
            "hand-rolled conflict checking, abort, rollback and re-execution instead of locks",
            BugChars {
                missing_sync: Some(MissingSync::AdHoc),
                fix_sites: 3,
                downcalls: NO_DC,
                ..Default::default()
            },
            (Hard, 103, 2),
            Some(keys::AV_ADHOC_RETRY),
        ),
        rec(
            "MySQL#21287",
            MySql,
            Av,
            true,
            "slow-query log toggles bypass the lock held by writers",
            BugChars {
                missing_sync: Some(MissingSync::Partial),
                fix_sites: 4,
                downcalls: NO_DC,
                ..Default::default()
            },
            (Medium, 26, 1),
            None,
        ),
        rec(
            "MySQL#33814",
            MySql,
            Av,
            true,
            "table-cache eviction uses the wrong lock around a long scan",
            BugChars {
                missing_sync: Some(MissingSync::WrongLock),
                single_atomic_block: true,
                fix_sites: 2,
                downcalls: dc(false, false, false, true, false),
                ..Default::default()
            },
            (Hard, 36, 2),
            None,
        ),
        rec(
            "MySQL#14712",
            MySql,
            Av,
            true,
            "two server processes interleave on the shared error-log pipe",
            BugChars {
                missing_sync: Some(MissingSync::Partial),
                cross_process_io: true,
                ..Default::default()
            },
            (Hard, 40, 2),
            None,
        ),
        rec(
            "MySQL#27350",
            MySql,
            Av,
            true,
            "dump thread must atomically snapshot and stream (long-latency callback)",
            BugChars {
                missing_sync: Some(MissingSync::Partial),
                long_latency_callback: true,
                ..Default::default()
            },
            (Medium, 30, 1),
            None,
        ),
    ]
}

/// Look up one bug by ID.
pub fn bug_by_id(id: &str) -> Option<BugRecord> {
    all_bugs().into_iter().find(|b| b.id == id)
}

/// Look up the bug implemented by a scenario key.
pub fn bug_by_scenario(key: &str) -> Option<BugRecord> {
    all_bugs().into_iter().find(|b| b.scenario == Some(key))
}
