//! Static findings and the `txfix lint` report, with the same JSON
//! treatment as the dynamic analyzer's reports ([`ToJson`] over
//! [`txfix_core::json`]).

use crate::synth::Verification;
use std::fmt;
use txfix_core::json::{get, Json, ToJson};
use txfix_core::{HazardClass, Recipe};

/// What a static pass detected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Hazard {
    /// Two paths can reach `loc` with disjoint locksets, at least one
    /// writing, neither hardware-atomic.
    Race {
        /// The racing location.
        loc: String,
    },
    /// A read-modify-write (or invariant-group access) whose protection
    /// is dropped partway: the locations are individually reachable but
    /// not covered by one continuous critical section.
    Atomicity {
        /// The locations whose unit is torn (sorted).
        locs: Vec<String>,
    },
    /// A cycle in the lock-order graph through non-revocable
    /// acquisitions (potential deadlock).
    LockCycle {
        /// The locks on the cycle (sorted).
        locks: Vec<String>,
    },
    /// A path waits on `cv` while holding `lock`, which a notifying
    /// path must acquire: the notifier can block behind the waiter
    /// forever.
    WaitCycle {
        /// The condition variable waited on.
        cv: String,
        /// The non-revocable lock held across the wait.
        lock: String,
    },
    /// A path notifies `cv` before writing `loc`, the state the wait
    /// predicate reads: the waiter can test a stale predicate and sleep
    /// through the only wakeup.
    LostWakeup {
        /// The condition variable notified.
        cv: String,
        /// The predicate location written after the notify.
        loc: String,
    },
}

impl Hazard {
    /// The coarse class, for recipe mapping and dynamic/static matching.
    pub fn class(&self) -> HazardClass {
        match self {
            Hazard::Race { .. } | Hazard::Atomicity { .. } => HazardClass::SharedData,
            Hazard::LockCycle { .. } => HazardClass::LockCycle,
            Hazard::WaitCycle { .. } => HazardClass::WaitCycle,
            Hazard::LostWakeup { .. } => HazardClass::LostWakeup,
        }
    }

    /// The names (locations, locks, condition variables) the hazard is
    /// about, for overlap matching.
    pub fn subjects(&self) -> Vec<String> {
        match self {
            Hazard::Race { loc } => vec![loc.clone()],
            Hazard::Atomicity { locs } => locs.clone(),
            Hazard::LockCycle { locks } => locks.clone(),
            Hazard::WaitCycle { cv, lock } => vec![cv.clone(), lock.clone()],
            Hazard::LostWakeup { cv, loc } => vec![cv.clone(), loc.clone()],
        }
    }

    /// Whether two hazards are about the same problem: same class and at
    /// least one shared subject name. Race and Atomicity deliberately
    /// share a class — a data race and the torn unit around it are one
    /// bug, and one wrap fixes both.
    pub fn overlaps(&self, other: &Hazard) -> bool {
        self.class() == other.class()
            && self.subjects().iter().any(|s| other.subjects().contains(s))
    }
}

impl fmt::Display for Hazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Hazard::Race { loc } => write!(f, "possible data race on {loc}"),
            Hazard::Atomicity { locs } => {
                write!(f, "atomicity not continuous across {}", locs.join(", "))
            }
            Hazard::LockCycle { locks } => {
                write!(f, "lock-order cycle through {}", locks.join(" -> "))
            }
            Hazard::WaitCycle { cv, lock } => {
                write!(f, "wait on {cv} holds \"{lock}\" that a notifier needs")
            }
            Hazard::LostWakeup { cv, loc } => {
                write!(f, "{cv} notified before {loc} is updated (lost wakeup)")
            }
        }
    }
}

/// One static finding: a hazard and the account of how it was derived.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// What was detected.
    pub hazard: Hazard,
    /// Human-readable account of the derivation.
    pub explanation: String,
}

/// One lint finding: a hazard plus the synthesized fixes and their
/// static verification results.
#[derive(Clone, Debug, PartialEq)]
pub struct LintFinding {
    /// What was detected.
    pub hazard: Hazard,
    /// Human-readable account of the derivation.
    pub explanation: String,
    /// The candidate recipes, each applied to the summary and re-checked
    /// (primary recipe first).
    pub fixes: Vec<Verification>,
}

impl LintFinding {
    /// Whether at least one synthesized fix statically verifies.
    pub fn has_verified_fix(&self) -> bool {
        self.fixes.iter().any(|v| v.verified)
    }
}

/// The result of linting one scenario-variant summary.
#[derive(Clone, Debug, PartialEq)]
pub struct LintReport {
    /// The scenario key.
    pub scenario: String,
    /// Which variant was linted (`buggy`, `dev`, `tm`).
    pub variant: String,
    /// How many concurrent paths the summary models.
    pub paths: usize,
    /// Everything the static passes detected.
    pub findings: Vec<LintFinding>,
}

impl LintReport {
    /// Whether the passes found anything.
    pub fn has_findings(&self) -> bool {
        !self.findings.is_empty()
    }

    /// Parse a report back from [`ToJson::to_json`] output.
    ///
    /// # Errors
    ///
    /// A description of the first malformed construct.
    pub fn from_json(input: &str) -> Result<LintReport, String> {
        let v = Json::parse(input)?;
        let obj = v.object("lint report")?;
        let findings = get(obj, "findings")?
            .array("findings")?
            .iter()
            .map(finding_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(LintReport {
            scenario: get(obj, "scenario")?.string("scenario")?,
            variant: get(obj, "variant")?.string("variant")?,
            paths: get(obj, "paths")?.number("paths")? as usize,
            findings,
        })
    }
}

impl ToJson for LintReport {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("scenario", Json::str(self.scenario.clone())),
            ("variant", Json::str(self.variant.clone())),
            ("paths", Json::int(self.paths as u64)),
            ("findings", Json::list(self.findings.iter().map(ToJson::to_json_value))),
        ])
    }
}

impl ToJson for Hazard {
    fn to_json_value(&self) -> Json {
        match self {
            Hazard::Race { loc } => {
                Json::obj([("kind", Json::str("race")), ("loc", Json::str(loc.clone()))])
            }
            Hazard::Atomicity { locs } => {
                Json::obj([("kind", Json::str("atomicity")), ("locs", Json::strings(locs))])
            }
            Hazard::LockCycle { locks } => {
                Json::obj([("kind", Json::str("lock_cycle")), ("locks", Json::strings(locks))])
            }
            Hazard::WaitCycle { cv, lock } => Json::obj([
                ("kind", Json::str("wait_cycle")),
                ("cv", Json::str(cv.clone())),
                ("lock", Json::str(lock.clone())),
            ]),
            Hazard::LostWakeup { cv, loc } => Json::obj([
                ("kind", Json::str("lost_wakeup")),
                ("cv", Json::str(cv.clone())),
                ("loc", Json::str(loc.clone())),
            ]),
        }
    }
}

fn hazard_from_json(v: &Json) -> Result<Hazard, String> {
    let obj = v.object("hazard")?;
    let strings = |key: &str| -> Result<Vec<String>, String> {
        get(obj, key)?.array(key)?.iter().map(|s| s.string(key)).collect::<Result<Vec<_>, _>>()
    };
    match get(obj, "kind")?.string("hazard.kind")?.as_str() {
        "race" => Ok(Hazard::Race { loc: get(obj, "loc")?.string("loc")? }),
        "atomicity" => Ok(Hazard::Atomicity { locs: strings("locs")? }),
        "lock_cycle" => Ok(Hazard::LockCycle { locks: strings("locks")? }),
        "wait_cycle" => Ok(Hazard::WaitCycle {
            cv: get(obj, "cv")?.string("cv")?,
            lock: get(obj, "lock")?.string("lock")?,
        }),
        "lost_wakeup" => Ok(Hazard::LostWakeup {
            cv: get(obj, "cv")?.string("cv")?,
            loc: get(obj, "loc")?.string("loc")?,
        }),
        other => Err(format!("unknown hazard kind {other:?}")),
    }
}

impl ToJson for LintFinding {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("hazard", self.hazard.to_json_value()),
            ("explanation", Json::str(self.explanation.clone())),
            ("fixes", Json::list(self.fixes.iter().map(ToJson::to_json_value))),
        ])
    }
}

fn finding_from_json(v: &Json) -> Result<LintFinding, String> {
    let obj = v.object("finding")?;
    let fixes = get(obj, "fixes")?
        .array("fixes")?
        .iter()
        .map(fix_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(LintFinding {
        hazard: hazard_from_json(get(obj, "hazard")?)?,
        explanation: get(obj, "explanation")?.string("explanation")?,
        fixes,
    })
}

impl ToJson for Verification {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("recipe", Json::str(self.recipe.slug())),
            ("verified", Json::Bool(self.verified)),
            ("residual", Json::strings(&self.residual)),
            ("introduced", Json::strings(&self.introduced)),
        ])
    }
}

fn fix_from_json(v: &Json) -> Result<Verification, String> {
    let obj = v.object("fix")?;
    let strings = |key: &str| -> Result<Vec<String>, String> {
        get(obj, key)?.array(key)?.iter().map(|s| s.string(key)).collect::<Result<Vec<_>, _>>()
    };
    Ok(Verification {
        recipe: Recipe::from_slug(&get(obj, "recipe")?.string("recipe")?)?,
        verified: get(obj, "verified")?.bool("verified")?,
        residual: strings("residual")?,
        introduced: strings("introduced")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> LintReport {
        LintReport {
            scenario: "av_wrong_lock".into(),
            variant: "buggy".into(),
            paths: 2,
            findings: vec![
                LintFinding {
                    hazard: Hazard::Race { loc: "m133773.cache_count".into() },
                    explanation: "paths reach it with disjoint locksets \"quoted\"\n".into(),
                    fixes: vec![
                        Verification {
                            recipe: Recipe::WrapAll,
                            verified: true,
                            residual: vec![],
                            introduced: vec![],
                        },
                        Verification {
                            recipe: Recipe::WrapUnprotected,
                            verified: false,
                            residual: vec!["possible data race on x".into()],
                            introduced: vec!["lock-order cycle through a -> b".into()],
                        },
                    ],
                },
                LintFinding {
                    hazard: Hazard::LockCycle { locks: vec!["a".into(), "b".into()] },
                    explanation: "both orders".into(),
                    fixes: vec![],
                },
                LintFinding {
                    hazard: Hazard::WaitCycle { cv: "cv".into(), lock: "l".into() },
                    explanation: "".into(),
                    fixes: vec![],
                },
                LintFinding {
                    hazard: Hazard::LostWakeup { cv: "cv".into(), loc: "x".into() },
                    explanation: "".into(),
                    fixes: vec![],
                },
                LintFinding {
                    hazard: Hazard::Atomicity { locs: vec!["x".into(), "y".into()] },
                    explanation: "".into(),
                    fixes: vec![],
                },
            ],
        }
    }

    #[test]
    fn lint_reports_round_trip_through_json() {
        let r = sample_report();
        let parsed = LintReport::from_json(&r.to_json()).expect("round trip");
        assert_eq!(parsed, r);
        assert!(parsed.has_findings());
        assert!(parsed.findings[0].has_verified_fix());
        assert!(!parsed.findings[1].has_verified_fix());
    }

    #[test]
    fn empty_report_round_trips() {
        let r =
            LintReport { scenario: "x".into(), variant: "tm".into(), paths: 3, findings: vec![] };
        let parsed = LintReport::from_json(&r.to_json()).expect("round trip");
        assert_eq!(parsed, r);
        assert!(!parsed.has_findings());
    }

    #[test]
    fn malformed_lint_json_is_rejected() {
        assert!(LintReport::from_json("{").is_err());
        assert!(LintReport::from_json(r#"{"scenario":"x"}"#).is_err());
        assert!(LintReport::from_json(
            r#"{"scenario":"x","variant":"buggy","paths":1,"findings":[{"hazard":{"kind":"nope"},"explanation":"","fixes":[]}]}"#
        )
        .is_err());
    }

    #[test]
    fn overlap_requires_same_class_and_shared_subject() {
        let race = Hazard::Race { loc: "x".into() };
        let av = Hazard::Atomicity { locs: vec!["x".into(), "y".into()] };
        let other_av = Hazard::Atomicity { locs: vec!["z".into()] };
        let cycle = Hazard::LockCycle { locks: vec!["x".into()] };
        assert!(race.overlaps(&av), "race and torn unit on one loc are one bug");
        assert!(!race.overlaps(&other_av));
        assert!(!race.overlaps(&cycle), "same name, different class");
    }
}
