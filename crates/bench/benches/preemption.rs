//! Ablation A2: contention management in deadlock preemption (Recipe 3).
//!
//! §4.4 warns that a preempted transaction which "restarts and acquires
//! locks before the other threads finish" livelocks, and prescribes
//! exponential backoff. This bench runs a two-thread opposite-order lock
//! storm under each backoff policy.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;
use txfix_core::{preemptible, PreemptOptions};
use txfix_stm::BackoffPolicy;
use txfix_txlock::TxMutex;

const MOVES: u64 = 100;

fn storm(policy: BackoffPolicy) {
    let a = Arc::new(TxMutex::new("a2.a", 0u64));
    let b = Arc::new(TxMutex::new("a2.b", 0u64));
    let opts = PreemptOptions { backoff: policy, ..Default::default() };
    std::thread::scope(|s| {
        for t in 0..2usize {
            let (a, b) = (a.clone(), b.clone());
            let opts = opts.clone();
            s.spawn(move || {
                for _ in 0..MOVES {
                    preemptible(&opts, |txn| {
                        let (first, second) = if t == 0 { (&a, &b) } else { (&b, &a) };
                        first.lock_tx(txn)?;
                        second.lock_tx(txn)?;
                        first.with_held(|v| *v += 1);
                        second.with_held(|v| *v += 1);
                        Ok(())
                    })
                    .expect("storm transaction");
                }
            });
        }
    });
    assert_eq!(*a.lock().unwrap(), 2 * MOVES);
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("preemption_backoff");
    g.sample_size(10);

    g.bench_function("no_backoff", |b| b.iter(|| storm(BackoffPolicy::None)));
    g.bench_function("spin_512", |b| b.iter(|| storm(BackoffPolicy::Spin { iters: 512 })));
    g.bench_function("exp_jitter_default", |b| {
        b.iter(|| {
            storm(BackoffPolicy::ExpJitter {
                base: Duration::from_micros(5),
                max: Duration::from_millis(2),
            })
        })
    });

    g.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
