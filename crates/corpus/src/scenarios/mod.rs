//! Executable reproductions of the 18 implemented fixes.
//!
//! Each scenario packages one studied bug as a small concurrent program
//! with three interchangeable variants. Running the **buggy** variant
//! *demonstrates* the bug — a detected deadlock or an observed invariant
//! violation — under a forced interleaving (barriers pin the racy window,
//! so demonstrations are deterministic, not probabilistic). The
//! **developers' fix** and the **TM fix** run the same workload and must
//! come out clean.
//!
//! Deadlock demonstrations never hang: buggy lock cycles are caught by
//! `txfix-txlock`'s wait-for-graph detector, and lock/wait cycles (which
//! the lock graph cannot see) by watchdog timeouts.

mod atomicity;
mod deadlock;
pub mod scheduled;

pub use scheduled::{scheduled_by_key, scheduled_scenarios, ScheduledRun, ScheduledScenario};

use std::fmt;

/// Which implementation of the scenario to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The code as shipped, exhibiting the bug.
    Buggy,
    /// What the application developers did.
    DevFix,
    /// The paper's TM fix (per the bug's recipe).
    TmFix,
}

impl Variant {
    /// All variants.
    pub const ALL: [Variant; 3] = [Variant::Buggy, Variant::DevFix, Variant::TmFix];
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Variant::Buggy => write!(f, "buggy"),
            Variant::DevFix => write!(f, "developer fix"),
            Variant::TmFix => write!(f, "TM fix"),
        }
    }
}

/// What a scenario run observed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The workload completed with every invariant intact.
    Correct,
    /// The bug manifested (deadlock detected / invariant violated), with a
    /// description of what was seen.
    BugObserved(String),
}

impl Outcome {
    /// Whether the bug manifested.
    pub fn is_bug(&self) -> bool {
        matches!(self, Outcome::BugObserved(_))
    }
}

/// One executable bug reproduction.
pub trait BugScenario: Send + Sync {
    /// The scenario key (matches
    /// [`BugRecord::scenario`](txfix_core::BugRecord::scenario)).
    fn key(&self) -> &'static str;
    /// Human-readable one-liner.
    fn describe(&self) -> &'static str;
    /// Execute the given variant once and report what was observed.
    fn run(&self, variant: Variant) -> Outcome;
}

/// All 18 scenarios, in corpus order (deadlocks first).
pub fn all_scenarios() -> Vec<Box<dyn BugScenario>> {
    let mut v = deadlock::scenarios();
    v.extend(atomicity::scenarios());
    v
}

/// Look up a scenario by key.
pub fn scenario_by_key(key: &str) -> Option<Box<dyn BugScenario>> {
    all_scenarios().into_iter().find(|s| s.key() == key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::keys;

    #[test]
    fn registry_covers_all_18_keys() {
        let scenarios = all_scenarios();
        assert_eq!(scenarios.len(), 18);
        for key in keys::ALL {
            assert!(
                scenarios.iter().any(|s| s.key() == key),
                "scenario {key} missing from registry"
            );
        }
    }

    #[test]
    fn descriptions_are_nonempty() {
        for s in all_scenarios() {
            assert!(!s.describe().is_empty(), "{}", s.key());
        }
    }
}
