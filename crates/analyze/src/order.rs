//! Lock-order inversion detection over the recorded trace.
//!
//! The same discipline as `txfix_txlock::lockdep`, replayed from the event
//! stream instead of recorded live: every `LockAttempt` adds "held →
//! attempted" edges, and a cycle through edges that have at least one
//! non-preemptible witness is a potential deadlock. Edges seen only through
//! revocable (`preemptible`) acquisitions never complete a reportable
//! cycle — a deadlock through them is resolved by preempting the
//! transaction (paper Recipe 3). Replaying from the trace lets `txfix
//! analyze` report lock-order hazards for *any* traced lock (TxMutex,
//! serial mutexes), and lets the live validator's findings be
//! cross-checked against the trace's.

use std::collections::{HashMap, HashSet};
use txfix_stm::trace::{EventKind, TraceEvent};

#[derive(Default, Clone, Copy)]
struct EdgeInfo {
    non_preemptible: bool,
}

/// A lock pair acquired in both orders (cycle through non-preemptible
/// edges), as sorted diagnostic names.
pub type InversionPair = (String, String);

/// Find lock-order inversions in `events`, deduplicated per sorted name
/// pair.
pub fn inversions(events: &[TraceEvent]) -> Vec<InversionPair> {
    let mut held: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut edges: HashMap<u64, HashMap<u64, EdgeInfo>> = HashMap::new();
    let mut names: HashMap<u64, String> = HashMap::new();

    for ev in events {
        let t = ev.thread;
        match &ev.kind {
            EventKind::LockAttempt { lock, name, preemptible } => {
                names.insert(*lock, name.clone());
                for &prior in held.entry(t).or_default().iter() {
                    if prior != *lock {
                        let e = edges.entry(prior).or_default().entry(*lock).or_default();
                        e.non_preemptible |= !preemptible;
                    }
                }
            }
            EventKind::LockAcquired { lock, name } => {
                names.insert(*lock, name.clone());
                held.entry(t).or_default().push(*lock);
            }
            EventKind::LockReleased { lock } => {
                let stack = held.entry(t).or_default();
                if let Some(pos) = stack.iter().rposition(|l| l == lock) {
                    stack.remove(pos);
                }
            }
            _ => {}
        }
    }

    let mut out: Vec<InversionPair> = Vec::new();
    for (&from, tos) in &edges {
        for (&to, info) in tos {
            if info.non_preemptible && reaches(&edges, to, from) {
                let a = names.get(&from).cloned().unwrap_or_else(|| format!("lock#{from}"));
                let b = names.get(&to).cloned().unwrap_or_else(|| format!("lock#{to}"));
                let pair = if a <= b { (a, b) } else { (b, a) };
                if !out.contains(&pair) {
                    out.push(pair);
                }
            }
        }
    }
    out.sort();
    out
}

/// Whether `to` is reachable from `from` over non-preemptible edges.
fn reaches(edges: &HashMap<u64, HashMap<u64, EdgeInfo>>, from: u64, to: u64) -> bool {
    let mut stack = vec![from];
    let mut seen = HashSet::new();
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n) {
            continue;
        }
        if let Some(next) = edges.get(&n) {
            stack.extend(next.iter().filter(|(_, e)| e.non_preemptible).map(|(&l, _)| l));
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attempt(thread: u64, lock: u64, preemptible: bool) -> TraceEvent {
        TraceEvent {
            thread,
            kind: EventKind::LockAttempt { lock, name: format!("l{lock}"), preemptible },
        }
    }

    fn acquired(thread: u64, lock: u64) -> TraceEvent {
        TraceEvent { thread, kind: EventKind::LockAcquired { lock, name: format!("l{lock}") } }
    }

    fn released(thread: u64, lock: u64) -> TraceEvent {
        TraceEvent { thread, kind: EventKind::LockReleased { lock } }
    }

    #[test]
    fn ab_ba_is_reported_once() {
        let invs = inversions(&[
            attempt(1, 1, false),
            acquired(1, 1),
            attempt(1, 2, false),
            acquired(1, 2),
            released(1, 2),
            released(1, 1),
            attempt(2, 2, false),
            acquired(2, 2),
            attempt(2, 1, false),
            acquired(2, 1),
            released(2, 1),
            released(2, 2),
        ]);
        assert_eq!(invs, vec![("l1".to_string(), "l2".to_string())]);
    }

    #[test]
    fn blocked_attempt_still_counts() {
        // Thread 2's second acquisition never succeeds (a real deadlock
        // would strike here); the attempt alone closes the cycle.
        let invs = inversions(&[
            attempt(1, 1, false),
            acquired(1, 1),
            attempt(2, 2, false),
            acquired(2, 2),
            attempt(1, 2, false),
            attempt(2, 1, false),
        ]);
        assert_eq!(invs.len(), 1);
    }

    #[test]
    fn consistent_order_is_clean() {
        let invs = inversions(&[
            attempt(1, 1, false),
            acquired(1, 1),
            attempt(1, 2, false),
            acquired(1, 2),
            released(1, 2),
            released(1, 1),
            attempt(2, 1, false),
            acquired(2, 1),
            attempt(2, 2, false),
            acquired(2, 2),
            released(2, 2),
            released(2, 1),
        ]);
        assert!(invs.is_empty(), "{invs:?}");
    }

    #[test]
    fn preemptible_cycles_are_benign() {
        let invs = inversions(&[
            attempt(1, 1, true),
            acquired(1, 1),
            attempt(1, 2, true),
            acquired(1, 2),
            released(1, 2),
            released(1, 1),
            attempt(2, 2, true),
            acquired(2, 2),
            attempt(2, 1, true),
            acquired(2, 1),
            released(2, 1),
            released(2, 2),
        ]);
        assert!(invs.is_empty(), "revocable cycles are resolved by preemption: {invs:?}");
    }

    #[test]
    fn three_lock_rotating_cycle_is_found() {
        let mut events = Vec::new();
        for t in 0..3u64 {
            let first = t + 1;
            let second = (t + 1) % 3 + 1;
            events.push(attempt(t + 1, first, false));
            events.push(acquired(t + 1, first));
            events.push(attempt(t + 1, second, false));
        }
        let invs = inversions(&events);
        assert!(!invs.is_empty(), "rotating three-lock cycle must be reported");
    }
}
