//! Sustained-load stress harness: drive corpus-derived workloads for a
//! fixed wall-clock duration across thread counts and fix variants,
//! reporting throughput, abort rate, and latency percentiles.
//!
//! Where the case comparisons in [`cases`](crate::cases) reproduce the
//! paper's Table 4 (fixed work, best-of-N), this harness answers the
//! operational question the paper's §5.4 stress runs gesture at: *what
//! does each fix variant sustain under open-ended load, and what does the
//! transactional runtime report while it does?* Each run:
//!
//! - spawns `threads` workers that execute one scenario operation in a
//!   loop until `secs` of wall-clock time elapse;
//! - measures every operation's latency into the same log₂ buckets the
//!   runtime's observability layer uses ([`txfix_stm::obs`]), so p50/p99
//!   are comparable between harness-side and runtime-side histograms;
//! - brackets the run with [`txfix_stm::obs::snapshot`] deltas taken at
//!   quiescence (workers joined), so commit/abort accounting is exact.
//!
//! Scenario keys mirror the corpus scenarios they stress; each has a
//! `dev` (developers' fix) and `tm` (TM fix) variant.

use crate::pool;
use txfix_apps::apache::buffered_log::make_record;
use txfix_apps::apache::{LockedBufferedLog, LogWriter, TmBufferedLog};
use txfix_apps::mysql::{MiniDb, MysqlVariant};
use txfix_apps::spidermonkey::{ObjectStore, OwnershipMode, OwnershipStore, StmStore};
use txfix_core::json::{Json, ToJson};
use txfix_stm::obs;
use txfix_stm::{ClockMode, OverheadModel, TVar, Txn};
use txfix_txlock::TxMutex;
use txfix_xcall::SimFs;

/// Scenario keys the harness can stress, in report order.
pub const SCENARIOS: &[&str] = &[
    "av_stats_race",
    "dl_local_lock_order",
    "dl_cache_atomtable",
    "apache_ii",
    "mozilla_i",
    "mysql_i",
];

/// The two fix variants every scenario provides.
pub const VARIANTS: &[&str] = &["dev", "tm"];

/// Configuration for one harness invocation.
#[derive(Clone, Debug)]
pub struct StressConfig {
    /// Wall-clock duration of each (scenario, variant, threads) run.
    pub secs: f64,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Scenario keys to run (order preserved; must come from
    /// [`SCENARIOS`]).
    pub scenarios: Vec<&'static str>,
    /// Seed for per-worker randomized state (today: the backoff-jitter
    /// RNG). Recorded in the report so a run can be reproduced; the same
    /// seed pins the same per-worker jitter streams.
    pub seed: u64,
    /// Version-clock schemes to sweep (each full scenario × threads ×
    /// variant matrix is run once per scheme).
    pub clocks: Vec<ClockMode>,
}

impl Default for StressConfig {
    fn default() -> StressConfig {
        StressConfig {
            secs: 2.0,
            threads: vec![1, 2, 4, 8],
            scenarios: SCENARIOS.to_vec(),
            seed: 0,
            clocks: vec![ClockMode::Gv1, ClockMode::Gv5],
        }
    }
}

/// The outcome of one sustained run of one scenario variant.
#[derive(Clone, Debug)]
pub struct StressRun {
    /// Scenario key.
    pub scenario: &'static str,
    /// `dev` or `tm`.
    pub variant: &'static str,
    /// Version-clock scheme the STM ran under (`gv1` or `gv5`); the
    /// lock-based `dev` variants record it too, for row symmetry.
    pub clock: &'static str,
    /// Worker threads driving load.
    pub threads: usize,
    /// Actual wall-clock duration.
    pub elapsed_secs: f64,
    /// Operations completed across all workers.
    pub ops: u64,
    /// Sustained throughput.
    pub ops_per_sec: f64,
    /// Median per-operation latency (log₂-bucket midpoint estimate).
    pub p50_ns: u64,
    /// 99th-percentile per-operation latency.
    pub p99_ns: u64,
    /// Transactions committed during the run (0 for lock-based variants).
    pub commits: u64,
    /// Transaction aborts of all causes during the run.
    pub aborts: u64,
    /// `aborts / (commits + aborts)`, 0 when no transactions ran.
    pub abort_rate: f64,
    /// Revocable-lock revocations (preemptions) during the run.
    pub lock_revocations: u64,
    /// Deferred/compensated x-call operations during the run.
    pub xcalls: u64,
}

impl ToJson for StressRun {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("scenario", Json::str(self.scenario)),
            ("variant", Json::str(self.variant)),
            ("clock", Json::str(self.clock)),
            ("threads", Json::int(self.threads as u64)),
            ("elapsed_secs", Json::Number(self.elapsed_secs)),
            ("ops", Json::int(self.ops)),
            ("ops_per_sec", Json::Number(self.ops_per_sec)),
            ("p50_ns", Json::int(self.p50_ns)),
            ("p99_ns", Json::int(self.p99_ns)),
            ("commits", Json::int(self.commits)),
            ("aborts", Json::int(self.aborts)),
            ("abort_rate", Json::Number(self.abort_rate)),
            ("lock_revocations", Json::int(self.lock_revocations)),
            ("xcalls", Json::int(self.xcalls)),
        ])
    }
}

/// Number of hardware threads on the host running the sweep. Recorded in
/// the report header so scaling claims can be judged against what the
/// machine could physically show.
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Assemble the whole-invocation report document (`BENCH_stm.json`).
pub fn stress_report(cfg: &StressConfig, runs: &[StressRun]) -> Json {
    Json::obj([
        ("schema", Json::str("txfix-stress-v2")),
        ("seed", Json::int(cfg.seed)),
        ("secs", Json::Number(cfg.secs)),
        ("host_cores", Json::int(host_cores() as u64)),
        ("threads", Json::list(cfg.threads.iter().map(|&t| Json::int(t as u64)))),
        ("clocks", Json::strings(cfg.clocks.iter().map(|c| c.name()))),
        ("scenarios", Json::strings(&cfg.scenarios)),
        ("runs", Json::list(runs.iter().map(ToJson::to_json_value))),
    ])
}

/// Run the full sweep: every configured clock scheme × scenario × thread
/// count × variant. Restores the default (GV1, deterministic) clock
/// scheme before returning, whatever the sweep ran under.
pub fn run_stress(cfg: &StressConfig) -> Vec<StressRun> {
    obs::enable();
    let mut runs = Vec::new();
    for &clock in &cfg.clocks {
        txfix_stm::clock::set_mode(clock);
        for &scenario in &cfg.scenarios {
            for &threads in &cfg.threads {
                for &variant in VARIANTS {
                    runs.push(run_one(scenario, variant, threads, cfg.secs, cfg.seed));
                }
            }
        }
    }
    txfix_stm::clock::set_mode(ClockMode::Gv1);
    runs
}

/// Run one (scenario, variant, threads) cell.
///
/// # Panics
///
/// Panics on a scenario key not in [`SCENARIOS`].
pub fn run_one(
    scenario: &'static str,
    variant: &'static str,
    threads: usize,
    secs: f64,
    seed: u64,
) -> StressRun {
    let tm = match variant {
        "dev" => false,
        "tm" => true,
        other => panic!("unknown variant {other:?} (want dev|tm)"),
    };
    match scenario {
        "av_stats_race" => av_stats_race(variant, tm, threads, secs, seed),
        "dl_local_lock_order" => dl_local_lock_order(variant, tm, threads, secs, seed),
        "dl_cache_atomtable" => dl_cache_atomtable(variant, tm, threads, secs, seed),
        "apache_ii" => apache_ii(variant, tm, threads, secs, seed),
        "mozilla_i" => mozilla_i(variant, tm, threads, secs, seed),
        "mysql_i" => mysql_i(variant, tm, threads, secs, seed),
        other => panic!("unknown stress scenario {other:?} (see stress::SCENARIOS)"),
    }
}

/// The shared driver: run a deadline-bounded worker pool
/// ([`pool::run_timed`]), then take a quiescent observability delta.
fn drive(
    scenario: &'static str,
    variant: &'static str,
    threads: usize,
    secs: f64,
    seed: u64,
    op: impl Fn(usize, u64) + Sync,
) -> StressRun {
    let before = obs::snapshot();
    let timed = pool::run_timed(threads, secs, seed, op);
    // Workers are joined: the delta is over a quiescent boundary and exact.
    let delta = obs::snapshot().delta(&before);
    let (mut commits, mut aborts, mut revocations, mut xcalls) = (0u64, 0u64, 0u64, 0u64);
    for site in &delta.sites {
        commits += site.commits;
        aborts += site.total_aborts();
        revocations += site.lock_revocations;
        xcalls += site.xcalls;
    }
    let ops = timed.ops;
    StressRun {
        scenario,
        variant,
        clock: txfix_stm::clock::mode().name(),
        threads,
        elapsed_secs: timed.elapsed_secs,
        ops,
        ops_per_sec: ops as f64 / timed.elapsed_secs,
        p50_ns: timed.latency.percentile(0.50),
        p99_ns: timed.latency.percentile(0.99),
        commits,
        aborts,
        abort_rate: if commits + aborts == 0 {
            0.0
        } else {
            aborts as f64 / (commits + aborts) as f64
        },
        lock_revocations: revocations,
        xcalls,
    }
}

/// MySQL#791 shape: two statistics counters that must move together. The
/// developers' fix guards them with one mutex; the TM fix wraps both
/// updates in one atomic block (Recipe 2).
fn av_stats_race(
    variant: &'static str,
    tm: bool,
    threads: usize,
    secs: f64,
    seed: u64,
) -> StressRun {
    if tm {
        let key_cache = TVar::new(0u64);
        let total = TVar::new(0u64);
        let txn = Txn::build().site("stress_av_stats");
        drive("av_stats_race", variant, threads, secs, seed, |_, _| {
            txn.try_run(|t| {
                key_cache.modify(t, |v| v + 1)?;
                total.modify(t, |v| v + 1)
            })
            .expect("stats transaction");
        })
    } else {
        let stats = parking_lot::Mutex::new((0u64, 0u64));
        drive("av_stats_race", variant, threads, secs, seed, |_, _| {
            let mut s = stats.lock();
            s.0 += 1;
            s.1 += 1;
        })
    }
}

/// Local lock-order inversion: transfers between account pairs. The
/// developers' fix imposes a global acquisition order; the TM fix
/// replaces both locks with one atomic block (Recipe 1).
fn dl_local_lock_order(
    variant: &'static str,
    tm: bool,
    threads: usize,
    secs: f64,
    seed: u64,
) -> StressRun {
    const ACCOUNTS: usize = 8;
    let pick = |t: usize, i: u64| -> (usize, usize) {
        let src = (i as usize).wrapping_mul(7).wrapping_add(t) % ACCOUNTS;
        let dst = (i as usize).wrapping_mul(13).wrapping_add(3) % ACCOUNTS;
        if src == dst {
            (src, (dst + 1) % ACCOUNTS)
        } else {
            (src, dst)
        }
    };
    if tm {
        let accounts: Vec<TVar<i64>> = (0..ACCOUNTS).map(|_| TVar::new(1_000)).collect();
        let txn = Txn::build().site("stress_dl_local");
        drive("dl_local_lock_order", variant, threads, secs, seed, |t, i| {
            let (src, dst) = pick(t, i);
            txn.try_run(|txn| {
                accounts[src].modify(txn, |v| v - 1)?;
                accounts[dst].modify(txn, |v| v + 1)
            })
            .expect("transfer transaction");
        })
    } else {
        let accounts: Vec<parking_lot::Mutex<i64>> =
            (0..ACCOUNTS).map(|_| parking_lot::Mutex::new(1_000)).collect();
        drive("dl_local_lock_order", variant, threads, secs, seed, |t, i| {
            let (src, dst) = pick(t, i);
            // The fix: always acquire in index order.
            let (lo, hi) = (src.min(dst), src.max(dst));
            let mut a = accounts[lo].lock();
            let mut b = accounts[hi].lock();
            let (from, to) = if lo == src { (&mut *a, &mut *b) } else { (&mut *b, &mut *a) };
            *from -= 1;
            *to += 1;
        })
    }
}

/// Mozilla#54743 shape: cache and atom-table locks taken in both orders.
/// The developers' fix orders them globally; the TM fix keeps both locks
/// but makes them revocable (Recipe 3) so the deadlock is preempted —
/// workers deliberately acquire in opposite orders to exercise
/// revocation under contention.
fn dl_cache_atomtable(
    variant: &'static str,
    tm: bool,
    threads: usize,
    secs: f64,
    seed: u64,
) -> StressRun {
    if tm {
        let cache = TxMutex::new("stress.cache", 0u64);
        let atoms = TxMutex::new("stress.atoms", 0u64);
        let txn = Txn::build().site("stress_dl_cache");
        drive("dl_cache_atomtable", variant, threads, secs, seed, |t, _| {
            let (first, second) = if t % 2 == 0 { (&cache, &atoms) } else { (&atoms, &cache) };
            txn.try_run(|txn| {
                first.with_tx(txn, |v| *v += 1)?;
                second.with_tx(txn, |v| *v += 1)
            })
            .expect("cache/atoms transaction");
        })
    } else {
        let cache = parking_lot::Mutex::new(0u64);
        let atoms = parking_lot::Mutex::new(0u64);
        drive("dl_cache_atomtable", variant, threads, secs, seed, |_, _| {
            // The fix: one global order, whatever the caller wanted.
            let mut c = cache.lock();
            let mut a = atoms.lock();
            *c += 1;
            *a += 1;
        })
    }
}

/// Apache#25520 shape: every request appends one record to the buffered
/// log. Developers' fix: a per-log lock. TM fix: atomic block with the
/// file flush as a deferred x-call (Recipe 2).
fn apache_ii(variant: &'static str, tm: bool, threads: usize, secs: f64, seed: u64) -> StressRun {
    use txfix_apps::apache::buffered_log::RECORD_LEN;
    let fs = SimFs::new();
    let log: Box<dyn LogWriter> = if tm {
        Box::new(TmBufferedLog::with_overhead(
            &fs,
            "stress.log",
            64 * RECORD_LEN,
            OverheadModel::SOFTWARE_TM,
        ))
    } else {
        Box::new(LockedBufferedLog::new(&fs, "stress.log", 64 * RECORD_LEN))
    };
    let run = drive("apache_ii", variant, threads, secs, seed, |t, i| {
        log.write_record(&make_record(t, i));
    });
    log.flush();
    run
}

/// Mozilla#133773 shape: interpreter threads over shared object slots.
/// Developers' fix: the ownership protocol. TM fix: Recipe 1 on software
/// TM. Every 64th operation moves a value across two shared objects (the
/// cross-scope operation that deadlocked the original).
fn mozilla_i(variant: &'static str, tm: bool, threads: usize, secs: f64, seed: u64) -> StressRun {
    const LOCAL_OBJECTS: usize = 4;
    const SHARED: usize = 4;
    const SLOTS: usize = 8;
    let objects = threads * LOCAL_OBJECTS + SHARED;
    let store: Box<dyn ObjectStore> = if tm {
        Box::new(StmStore::software(objects, SLOTS))
    } else {
        Box::new(OwnershipStore::new(OwnershipMode::DevFix, objects, SLOTS))
    };
    let shared_base = threads * LOCAL_OBJECTS;
    drive("mozilla_i", variant, threads, secs, seed, |t, i| {
        let obj = t * LOCAL_OBJECTS + (i as usize % LOCAL_OBJECTS);
        let slot = i as usize % SLOTS;
        store.set_slot(t, obj, slot, i as i64);
        let _ = store.get_slot(t, obj, slot);
        if i % 64 == 0 {
            let src = shared_base + (i as usize / 64) % SHARED;
            let dst = shared_base + (i as usize / 64 + 1) % SHARED;
            store.move_slot(t, src, dst, slot);
            store.quiesce(t);
        }
    })
}

/// MySQL#169 shape: insert traffic with periodic delete-all statements.
/// Developers' fix: hold the table lock through binlogging. TM fix:
/// Recipe 4's atomic/lock serialization.
fn mysql_i(variant: &'static str, tm: bool, threads: usize, secs: f64, seed: u64) -> StressRun {
    let tables = threads.max(1);
    let db = MiniDb::new(if tm { MysqlVariant::TmRecipe4 } else { MysqlVariant::DevFix }, tables);
    for t in 0..tables {
        for i in 0..8 {
            db.insert(t, i, i as i64);
        }
    }
    drive("mysql_i", variant, threads, secs, seed, |t, i| {
        let table = t % tables;
        if i % 32 == 31 {
            db.delete_all(table);
        } else {
            db.insert(table, (t as u64) << 48 | i, i as i64);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(scenario: &'static str) -> (StressRun, StressRun) {
        obs::enable();
        let dev = run_one(scenario, "dev", 2, 0.05, 0x5EED);
        let tm = run_one(scenario, "tm", 2, 0.05, 0x5EED);
        (dev, tm)
    }

    #[test]
    fn every_scenario_sustains_load_in_both_variants() {
        for &scenario in SCENARIOS {
            let (dev, tm) = quick(scenario);
            for run in [&dev, &tm] {
                assert!(run.ops > 0, "{scenario}/{}: no ops", run.variant);
                assert!(run.ops_per_sec > 0.0, "{scenario}/{}", run.variant);
                assert!(run.p99_ns >= run.p50_ns, "{scenario}/{}", run.variant);
                assert!(
                    (0.0..=1.0).contains(&run.abort_rate),
                    "{scenario}/{}: abort rate {}",
                    run.variant,
                    run.abort_rate
                );
            }
            assert!(tm.commits > 0, "{scenario}/tm: no transactions observed");
            assert_eq!(dev.scenario, scenario);
        }
    }

    #[test]
    fn report_document_is_valid_json() {
        obs::enable();
        let cfg = StressConfig {
            secs: 0.05,
            threads: vec![1],
            scenarios: vec!["av_stats_race"],
            seed: 0x5EED,
            clocks: vec![ClockMode::Gv1, ClockMode::Gv5],
        };
        let runs = run_stress(&cfg);
        assert_eq!(runs.len(), 4);
        assert_eq!(runs[0].clock, "gv1");
        assert_eq!(runs[3].clock, "gv5");
        // The sweep must leave the process back on the deterministic clock.
        assert_eq!(txfix_stm::clock::mode(), ClockMode::Gv1);
        let doc = stress_report(&cfg, &runs);
        let parsed = Json::parse(&doc.to_json()).expect("valid JSON");
        let obj = parsed.object("report").unwrap();
        assert_eq!(obj.get("schema").unwrap().string("schema").unwrap(), "txfix-stress-v2");
        assert!(obj.get("host_cores").unwrap().number("host_cores").unwrap() >= 1.0);
        assert_eq!(obj.get("runs").unwrap().array("runs").unwrap().len(), 4);
    }
}
