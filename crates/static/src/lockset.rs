//! The static lockset pass: RacerD-style race detection plus
//! dropped-lockset atomicity checking, over access facts extracted from
//! the summary IR.
//!
//! **Races.** Two accesses to one location on different paths race when
//! at least one writes, neither is hardware-atomic, and their
//! cross-path protection sets are disjoint — no common lock, no shared
//! atomic-region serialization. This is sound over the model: no
//! interleaving assumptions, just set intersection.
//!
//! **Atomicity.** A path that reads a location and later writes it back
//! forms a read-modify-write unit; if no single protection unit (a lock
//! held continuously, one atomic-region instance) spans both accesses
//! while another path writes the location, the unit can be torn. The
//! same rule lifts to declared invariant groups: touching two group
//! members without continuous common protection is reported even when
//! each member alone looks fine.

use crate::facts::{accesses, Access};
use crate::ir::ScenarioSummary;
use crate::report::{Finding, Hazard};
use std::collections::BTreeSet;

/// The race half of the pass.
pub(crate) fn races(summary: &ScenarioSummary) -> Vec<Finding> {
    let accs = accesses(summary);
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut out = Vec::new();
    for (i, a) in accs.iter().enumerate() {
        for b in &accs[i + 1..] {
            if a.path == b.path || a.loc != b.loc || seen.contains(&a.loc) {
                continue;
            }
            if !(a.writes || b.writes) || (a.hw_atomic && b.hw_atomic) {
                continue;
            }
            if a.race_prot.is_disjoint(&b.race_prot) {
                seen.insert(a.loc.clone());
                out.push(Finding {
                    hazard: Hazard::Race { loc: a.loc.clone() },
                    explanation: format!(
                        "{} ({}) and {} ({}) can interleave freely: no common lock or \
                         serialized atomic region protects {}",
                        summary.paths[a.path].name,
                        prot_desc(a),
                        summary.paths[b.path].name,
                        prot_desc(b),
                        a.loc,
                    ),
                });
            }
        }
    }
    out
}

fn prot_desc(a: &Access) -> String {
    if a.race_prot.is_empty() {
        "unprotected".to_string()
    } else {
        format!("under {}", a.race_prot.iter().cloned().collect::<Vec<_>>().join("+"))
    }
}

/// The atomicity half of the pass: dropped-lockset read-modify-write
/// units, then invariant groups.
pub(crate) fn atomicity(summary: &ScenarioSummary) -> Vec<Finding> {
    let accs = accesses(summary);
    let mut out = Vec::new();
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();

    // Stale-read rule: within one path, pair each write with the latest
    // preceding access of the same location; when that access is a read
    // (so a value computed from it is being written back) and no
    // protection unit spans both, the read-modify-write can be torn —
    // provided some other path writes the location at all.
    for w in accs.iter().filter(|a| a.writes && !a.reads) {
        let Some(r) = accs
            .iter()
            .filter(|r| r.path == w.path && r.loc == w.loc && r.op < w.op)
            .max_by_key(|r| r.op)
        else {
            continue;
        };
        if !r.reads || r.writes {
            continue; // the unit starts at a write (or an indivisible RMW)
        }
        if !r.unit_prot.is_disjoint(&w.unit_prot) {
            continue; // continuously protected
        }
        let contended = accs.iter().any(|o| o.path != w.path && o.loc == w.loc && o.writes);
        if !contended {
            continue;
        }
        let key = vec![w.loc.clone()];
        if seen.insert(key.clone()) {
            out.push(Finding {
                hazard: Hazard::Atomicity { locs: key },
                explanation: format!(
                    "{} reads {} and writes it back without continuous protection \
                     (the lockset is dropped between the accesses) while another \
                     path writes it",
                    summary.paths[w.path].name, w.loc,
                ),
            });
        }
    }

    // Invariant-group rule: two accesses to distinct members of a
    // declared group on one path, with no protection unit spanning both,
    // while another path writes a member.
    for group in &summary.groups {
        let members: BTreeSet<&String> = group.iter().collect();
        let group_accs: Vec<&Access> = accs.iter().filter(|a| members.contains(&a.loc)).collect();
        let torn = group_accs.iter().enumerate().any(|(i, a)| {
            group_accs[i + 1..].iter().any(|b| {
                a.path == b.path && a.loc != b.loc && a.unit_prot.is_disjoint(&b.unit_prot)
            })
        });
        let contended =
            group_accs.iter().any(|a| a.writes && group_accs.iter().any(|b| b.path != a.path));
        if torn && contended {
            let mut locs: Vec<String> = group.clone();
            locs.sort();
            if seen.insert(locs.clone()) {
                out.push(Finding {
                    hazard: Hazard::Atomicity { locs: locs.clone() },
                    explanation: format!(
                        "the invariant tying {} together can be observed torn: a path \
                         touches both without one continuous critical section",
                        locs.join(" and "),
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Path, Summary};

    fn loc_of(f: &Finding) -> &Hazard {
        &f.hazard
    }

    #[test]
    fn disjoint_locksets_race() {
        let s = Summary::new("t", "buggy")
            .path(Path::new("p0").acquire("a").write("x").release("a"))
            .path(Path::new("p1").acquire("b").write("x").release("b"))
            .build();
        let r = races(&s);
        assert_eq!(r.len(), 1);
        assert_eq!(*loc_of(&r[0]), Hazard::Race { loc: "x".into() });
    }

    #[test]
    fn common_lock_and_read_read_do_not_race() {
        let common = Summary::new("t", "dev")
            .path(Path::new("p0").acquire("a").write("x").release("a"))
            .path(Path::new("p1").acquire("a").acquire("b").write("x").release("b").release("a"))
            .build();
        assert!(races(&common).is_empty());

        let readers = Summary::new("t", "dev")
            .path(Path::new("p0").read("x"))
            .path(Path::new("p1").read("x"))
            .build();
        assert!(races(&readers).is_empty());
    }

    #[test]
    fn atomic_regions_serialize_against_each_other() {
        let s = Summary::new("t", "tm")
            .path(Path::new("p0").atomic_begin().write("x").atomic_end())
            .path(Path::new("p1").atomic_begin().write("x").atomic_end())
            .build();
        assert!(races(&s).is_empty());
    }

    #[test]
    fn serialized_region_excludes_the_lock_it_names() {
        let s = Summary::new("t", "tm")
            .path(Path::new("p0").acquire("l").write("x").release("l"))
            .path(Path::new("p1").atomic_serialized(&["l"]).write("x").atomic_end())
            .build();
        assert!(races(&s).is_empty());

        let unserialized = Summary::new("t", "tm")
            .path(Path::new("p0").acquire("l").write("x").release("l"))
            .path(Path::new("p1").atomic_begin().write("x").atomic_end())
            .build();
        assert_eq!(races(&unserialized).len(), 1, "plain region vs lock still races");
    }

    #[test]
    fn hardware_atomics_do_not_race_but_still_tear() {
        let s = Summary::new("t", "dev")
            .path(Path::new("p0").rmw("x"))
            .path(Path::new("p1").rmw("x"))
            .build();
        assert!(races(&s).is_empty());
        assert!(atomicity(&s).is_empty(), "an RMW is one indivisible unit");

        // Separate atomic load + atomic store: no data race, but the
        // read-modify-write unit is torn.
        let torn = Summary::new("t", "buggy")
            .path(Path::new("p0").read_atomic("x").write_atomic("x"))
            .path(Path::new("p1").read_atomic("x").write_atomic("x"))
            .build();
        assert!(races(&torn).is_empty());
        assert_eq!(atomicity(&torn).len(), 1);
    }

    #[test]
    fn dropped_lockset_between_read_and_write_is_flagged() {
        let s = Summary::new("t", "buggy")
            .path(
                Path::new("p0")
                    .acquire("l")
                    .read("x")
                    .release("l")
                    .acquire("l")
                    .write("x")
                    .release("l"),
            )
            .path(Path::new("p1").acquire("l").write("x").release("l"))
            .build();
        assert!(races(&s).is_empty(), "every access is under the lock");
        let av = atomicity(&s);
        assert_eq!(av.len(), 1);
        assert_eq!(*loc_of(&av[0]), Hazard::Atomicity { locs: vec!["x".into()] });
    }

    #[test]
    fn continuous_protection_and_uncontended_units_are_clean() {
        let continuous = Summary::new("t", "dev")
            .path(Path::new("p0").acquire("l").read("x").write("x").release("l"))
            .path(Path::new("p1").acquire("l").write("x").release("l"))
            .build();
        assert!(atomicity(&continuous).is_empty());

        let uncontended = Summary::new("t", "dev")
            .path(Path::new("p0").read("x").write("x"))
            .path(Path::new("p1").read("x"))
            .build();
        assert!(atomicity(&uncontended).is_empty(), "no concurrent writer");
    }

    #[test]
    fn a_reread_restores_the_unit() {
        // read; (unit break); read again; write — the value written
        // derives from the post-break read, as after a condition wait.
        let s = Summary::new("t", "dev")
            .path(
                Path::new("p0")
                    .acquire("l")
                    .read("x")
                    .release("l")
                    .acquire("l")
                    .read("x")
                    .write("x")
                    .release("l"),
            )
            .path(Path::new("p1").acquire("l").write("x").release("l"))
            .build();
        assert!(atomicity(&s).is_empty());
    }

    #[test]
    fn invariant_groups_catch_torn_multi_location_updates() {
        let s = Summary::new("t", "buggy")
            .group(&["x", "y"])
            .path(Path::new("w").write("x").write("y"))
            .path(Path::new("r").read("x").read("y"))
            .build();
        let av = atomicity(&s);
        assert!(
            av.iter().any(|f| f.hazard == Hazard::Atomicity { locs: vec!["x".into(), "y".into()] }),
            "{av:?}"
        );

        let locked = Summary::new("t", "dev")
            .group(&["x", "y"])
            .path(Path::new("w").acquire("l").write("x").write("y").release("l"))
            .path(Path::new("r").acquire("l").read("x").read("y").release("l"))
            .build();
        assert!(atomicity(&locked).is_empty());
    }
}
