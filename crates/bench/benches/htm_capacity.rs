//! Ablation A3: hardware capacity bounds and fallback cost.
//!
//! The hardware-TM result of §5.4.1 relies on transactions fitting the
//! hardware's tracking capacity. This bench sweeps the transaction
//! footprint across a fixed capacity bound and measures the cost of the
//! software fallback engaging.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txfix_htm::{hybrid_atomic, CommitPath, HtmConfig};
use txfix_stm::TVar;

fn bench_capacity_sweep(c: &mut Criterion) {
    let vars: Vec<TVar<u64>> = (0..512).map(|_| TVar::new(1)).collect();
    let cfg = HtmConfig::new().capacity(64, 64);

    let mut g = c.benchmark_group("htm_capacity");
    g.sample_size(20);

    for &footprint in &[8usize, 32, 56, 72, 128, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(footprint), &footprint, |b, &n| {
            b.iter(|| {
                let (sum, report) = hybrid_atomic(&cfg, |txn| {
                    let mut s = 0;
                    for v in &vars[..n] {
                        s += v.read(txn)?;
                    }
                    Ok(s)
                })
                .expect("sweep transaction");
                assert_eq!(sum, n as u64);
                // Shape check: within capacity commits in hardware,
                // beyond it falls back.
                if n < 60 {
                    assert_eq!(report.path, CommitPath::Hardware);
                } else if n > 70 {
                    assert_eq!(report.path, CommitPath::SoftwareFallback);
                }
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench_capacity_sweep);
criterion_main!(benches);
