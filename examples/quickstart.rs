//! Quickstart: the transactional-memory toolbox in five minutes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Walks through the substrate the paper's fixes are built from: atomic
//! regions over `TVar`s, blocking `retry`, revocable locks with deadlock
//! preemption, and transactional (deferred) file I/O.

use std::sync::Arc;
use txfix::stm::{atomic, TVar};
use txfix::tmsync::guard;
use txfix::txlock::TxMutex;
use txfix::xcall::{SimFs, XFile};

fn main() {
    // 1. Atomic regions: multi-variable invariants without picking a lock.
    let checking = TVar::new(100i64);
    let savings = TVar::new(0i64);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let (c, v) = (checking.clone(), savings.clone());
            s.spawn(move || {
                for _ in 0..250 {
                    atomic(|txn| {
                        let x = c.read(txn)?;
                        let y = v.read(txn)?;
                        c.write(txn, x - 1)?;
                        v.write(txn, y + 1)
                    });
                }
            });
        }
    });
    assert_eq!(checking.load() + savings.load(), 100);
    println!("1. bank invariant conserved: {} + {} = 100", checking.load(), savings.load());

    // 2. retry: block until another transaction changes what you read.
    let stock = TVar::new(0u32);
    std::thread::scope(|s| {
        let stock2 = stock.clone();
        s.spawn(move || {
            let got = atomic(|txn| {
                let n = stock2.read(txn)?;
                guard(txn, n > 0)?; // aborts and sleeps until `stock` changes
                stock2.write(txn, n - 1)?;
                Ok(n)
            });
            println!("2. consumer woke up and took one of {got} items");
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        stock.store(3); // wakes the retry
    });
    assert_eq!(stock.load(), 2);

    // 3. Revocable locks: acquired inside a transaction, released
    //    automatically if it aborts — deadlock becomes a retry, not a hang.
    let a = Arc::new(TxMutex::new("demo.a", 0u64));
    let b = Arc::new(TxMutex::new("demo.b", 0u64));
    std::thread::scope(|s| {
        for t in 0..2usize {
            let (a, b) = (a.clone(), b.clone());
            s.spawn(move || {
                for _ in 0..100 {
                    // Opposite acquisition orders — the classic AB-BA bug —
                    // but preemption resolves every collision.
                    txfix::recipes::preemptible(&Default::default(), |txn| {
                        let (first, second) = if t == 0 { (&a, &b) } else { (&b, &a) };
                        first.lock_tx(txn)?;
                        second.lock_tx(txn)?;
                        first.with_held(|v| *v += 1);
                        second.with_held(|v| *v += 1);
                        Ok(())
                    })
                    .expect("preemptible section");
                }
            });
        }
    });
    println!("3. AB-BA storm survived: a = {}, b = {}", *a.lock().unwrap(), *b.lock().unwrap());

    // 4. Transactional I/O: file writes are deferred to commit, so an
    //    aborted transaction leaves no trace in the file.
    let fs = SimFs::new();
    let log = XFile::open_or_create(&fs, "quickstart.log");
    let log2 = log.clone();
    let mut first_attempt = true;
    atomic(move |txn| {
        log2.x_append(txn, b"attempt!\n")?;
        if first_attempt {
            first_attempt = false;
            return txn.restart(); // discard the buffered append, run again
        }
        Ok(())
    });
    assert_eq!(log.file().read_all(), b"attempt!\n");
    println!("4. exactly one committed append despite the aborted attempt");
}
