//! The static lock-order-graph pass: cycle detection over all path
//! summaries at once, with revocable acquisitions exempt.
//!
//! Mirrors `txfix_txlock::lockdep`'s runtime rules: an edge `a -> b` is
//! recorded when a path acquires `b` while holding `a`, the edge is
//! non-preemptible when that acquisition is a plain (non-revocable)
//! lock, and only cycles whose every edge has a non-preemptible witness
//! are reported — a cycle broken by a `TxMutex` acquisition inside a
//! transaction resolves itself through Recipe 3's preemption, so it is
//! not a deadlock.

use crate::ir::{Op, ScenarioSummary};
use crate::report::{Finding, Hazard};
use std::collections::{BTreeMap, BTreeSet};

/// Build the lock-order edges; `true` marks a non-preemptible witness.
fn edges(summary: &ScenarioSummary) -> BTreeMap<String, BTreeMap<String, bool>> {
    let mut g: BTreeMap<String, BTreeMap<String, bool>> = BTreeMap::new();
    for path in &summary.paths {
        let mut held: Vec<String> = Vec::new();
        for op in &path.ops {
            match op {
                Op::Acquire { lock, revocable } => {
                    for h in &held {
                        let e = g.entry(h.clone()).or_default().entry(lock.clone()).or_default();
                        *e |= !*revocable;
                    }
                    held.push(lock.clone());
                }
                Op::Release { lock } => {
                    if let Some(pos) = held.iter().rposition(|h| h == lock) {
                        held.remove(pos);
                    }
                }
                _ => {}
            }
        }
    }
    g
}

/// The lock-order pass: report each strongly connected component of two
/// or more locks in the non-preemptible edge subgraph.
pub(crate) fn cycles(summary: &ScenarioSummary) -> Vec<Finding> {
    let g = edges(summary);
    // Keep only edges with a non-preemptible witness.
    let firm: BTreeMap<&str, BTreeSet<&str>> = g
        .iter()
        .map(|(from, tos)| {
            (from.as_str(), tos.iter().filter(|(_, np)| **np).map(|(to, _)| to.as_str()).collect())
        })
        .collect();
    let nodes: BTreeSet<&str> = firm
        .iter()
        .flat_map(|(from, tos)| std::iter::once(*from).chain(tos.iter().copied()))
        .collect();

    // The graphs are tiny (a handful of locks), so mutual-reachability
    // SCCs are computed directly rather than via Tarjan.
    let reach = |from: &str| -> BTreeSet<&str> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if let Some(tos) = firm.get(n) {
                for t in tos {
                    if seen.insert(*t) {
                        stack.push(t);
                    }
                }
            }
        }
        seen
    };
    let reachable: BTreeMap<&str, BTreeSet<&str>> = nodes.iter().map(|n| (*n, reach(n))).collect();

    let mut out = Vec::new();
    let mut assigned: BTreeSet<&str> = BTreeSet::new();
    for n in &nodes {
        if assigned.contains(n) {
            continue;
        }
        let scc: Vec<&str> = nodes
            .iter()
            .filter(|m| reachable[n].contains(**m) && reachable[**m].contains(*n))
            .copied()
            .collect();
        if scc.len() >= 2 {
            assigned.extend(scc.iter().copied());
            let locks: Vec<String> = scc.iter().map(|l| l.to_string()).collect();
            out.push(Finding {
                explanation: format!(
                    "these locks are acquired in conflicting orders by different paths \
                     and none of the closing acquisitions is revocable: {}",
                    locks.join(", "),
                ),
                hazard: Hazard::LockCycle { locks },
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Path, Summary};

    #[test]
    fn opposite_orders_form_a_cycle() {
        let s = Summary::new("t", "buggy")
            .path(Path::new("p0").acquire("a").acquire("b").release("b").release("a"))
            .path(Path::new("p1").acquire("b").acquire("a").release("a").release("b"))
            .build();
        let c = cycles(&s);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].hazard, Hazard::LockCycle { locks: vec!["a".into(), "b".into()] });
    }

    #[test]
    fn consistent_order_is_clean() {
        let s = Summary::new("t", "dev")
            .path(Path::new("p0").acquire("a").acquire("b").release("b").release("a"))
            .path(Path::new("p1").acquire("a").acquire("b").release("b").release("a"))
            .build();
        assert!(cycles(&s).is_empty());
    }

    #[test]
    fn revocable_acquisitions_break_the_cycle() {
        // One side acquires inside a transaction with TxMutex (Recipe 3):
        // the cycle resolves by preemption, so it is not reported.
        let s = Summary::new("t", "tm")
            .path(
                Path::new("p0")
                    .atomic_begin()
                    .acquire_tx("a")
                    .acquire_tx("b")
                    .release("b")
                    .release("a")
                    .atomic_end(),
            )
            .path(Path::new("p1").acquire("b").acquire("a").release("a").release("b"))
            .build();
        assert!(cycles(&s).is_empty());
    }

    #[test]
    fn three_lock_rotation_is_one_cycle() {
        let s = Summary::new("t", "buggy")
            .path(Path::new("p0").acquire("a").acquire("b").release("b").release("a"))
            .path(Path::new("p1").acquire("b").acquire("c").release("c").release("b"))
            .path(Path::new("p2").acquire("c").acquire("a").release("a").release("c"))
            .build();
        let c = cycles(&s);
        assert_eq!(c.len(), 1);
        assert_eq!(
            c[0].hazard,
            Hazard::LockCycle { locks: vec!["a".into(), "b".into(), "c".into()] }
        );
    }

    #[test]
    fn disjoint_nesting_is_not_a_cycle() {
        let s = Summary::new("t", "dev")
            .path(Path::new("p0").acquire("a").acquire("b").release("b").release("a"))
            .path(Path::new("p1").acquire("c").acquire("d").release("d").release("c"))
            .build();
        assert!(cycles(&s).is_empty());
    }
}
