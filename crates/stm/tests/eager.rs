//! The eager (encounter-time locking, undo-log) write policy must provide
//! exactly the same atomicity and isolation as the default lazy policy.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use txfix_stm::{TVar, Txn, TxnBuilder, TxnError, WritePolicy};

fn eager() -> TxnBuilder {
    Txn::build().write_policy(WritePolicy::Eager)
}

fn run<T>(txn: &TxnBuilder, body: impl FnMut(&mut txfix_stm::Txn) -> txfix_stm::StmResult<T>) -> T {
    txn.try_run(body).expect("transaction cannot fail terminally").0
}

#[test]
fn eager_basic_read_write() {
    let v = TVar::new(1u64);
    let out = run(&eager(), |txn| {
        let x = v.read(txn)?;
        v.write(txn, x + 10)?;
        v.read(txn) // read-own-write through the in-place update
    });
    assert_eq!(out, 11);
    assert_eq!(v.load(), 11);
}

#[test]
fn eager_abort_rolls_back_in_place_writes() {
    let v = TVar::new(5u64);
    let w = TVar::new(50u64);
    let r: Result<(), TxnError> = eager()
        .try_run(|txn| {
            v.write(txn, 999)?;
            w.write(txn, 999)?;
            txn.cancel()
        })
        .map(|(v, _)| v);
    assert_eq!(r, Err(TxnError::Cancelled));
    assert_eq!(v.load(), 5, "eager write leaked through an abort");
    assert_eq!(w.load(), 50);
}

#[test]
fn eager_restart_never_exposes_intermediate_values() {
    // While the eager transaction holds the orec, concurrent loads must
    // never observe the uncommitted in-place value.
    let v = TVar::new(0i64);
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let (v2, stop2) = (v.clone(), stop.clone());
        s.spawn(move || {
            while !stop2.load(Ordering::SeqCst) {
                let x = v2.load();
                assert!(x >= 0, "observed uncommitted eager write {x}");
            }
        });
        let v3 = v.clone();
        s.spawn(move || {
            for i in 0..300 {
                let mut aborted_once = false;
                let _ = eager().try_run(|txn| {
                    // Negative = "uncommitted marker".
                    v3.write(txn, -1)?;
                    if !aborted_once {
                        aborted_once = true;
                        return txn.restart();
                    }
                    v3.write(txn, i)?;
                    Ok(())
                });
            }
            stop.store(true, Ordering::SeqCst);
        });
    });
    assert_eq!(v.load(), 299);
}

#[test]
fn eager_counter_is_exact_under_contention() {
    let v = TVar::new(0u64);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let v = v.clone();
            s.spawn(move || {
                for _ in 0..250 {
                    run(&eager(), |txn| v.modify(txn, |x| x + 1));
                }
            });
        }
    });
    assert_eq!(v.load(), 1000);
}

#[test]
fn eager_and_lazy_transactions_interoperate() {
    // Mixed policies on the same variables must still serialize.
    let a = TVar::new(0u64);
    let b = TVar::new(0u64);
    std::thread::scope(|s| {
        let (a1, b1) = (a.clone(), b.clone());
        s.spawn(move || {
            for _ in 0..200 {
                run(&eager(), |txn| {
                    let x = a1.read(txn)?;
                    a1.write(txn, x + 1)?;
                    b1.modify(txn, |y| y + 1)
                });
            }
        });
        let (a2, b2) = (a.clone(), b.clone());
        s.spawn(move || {
            for _ in 0..200 {
                run(&Txn::build(), |txn| {
                    let y = b2.read(txn)?;
                    b2.write(txn, y + 1)?;
                    a2.modify(txn, |x| x + 1)
                });
            }
        });
    });
    assert_eq!(a.load(), 400);
    assert_eq!(b.load(), 400);
}

#[test]
fn eager_multi_var_invariant_holds() {
    let x = TVar::new(500i64);
    let y = TVar::new(500i64);
    std::thread::scope(|s| {
        for t in 0..3 {
            let (x, y) = (x.clone(), y.clone());
            s.spawn(move || {
                for i in 0..200 {
                    let amt = ((i + t) % 23) as i64;
                    run(&eager(), |txn| {
                        let a = x.read(txn)?;
                        let b = y.read(txn)?;
                        x.write(txn, a - amt)?;
                        y.write(txn, b + amt)
                    });
                }
            });
        }
        let (x, y) = (x.clone(), y.clone());
        s.spawn(move || {
            for _ in 0..200 {
                let (a, b) = run(&Txn::build(), |txn| Ok((x.read(txn)?, y.read(txn)?)));
                assert_eq!(a + b, 1000, "eager transfer tore the invariant");
            }
        });
    });
    assert_eq!(x.load() + y.load(), 1000);
}

#[test]
fn eager_write_capacity_counts_undo_entries() {
    let vars: Vec<TVar<u32>> = (0..8u32).map(TVar::new).collect();
    let r: Result<(), TxnError> = eager()
        .capacity(64, 3)
        .try_run(|txn| {
            for v in &vars {
                v.write(txn, 1)?;
            }
            Ok(())
        })
        .map(|(v, _)| v);
    assert!(matches!(r, Err(TxnError::Capacity { .. })), "got {r:?}");
    // The failed attempt's writes must have been rolled back.
    for (i, v) in vars.iter().enumerate() {
        assert_eq!(v.load(), i as u32, "capacity abort leaked a write");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any single-threaded program, eager and lazy execution produce
    /// identical final states.
    #[test]
    fn eager_equals_lazy_sequentially(
        ops in proptest::collection::vec((0usize..4, -50i64..50), 0..30),
        init in proptest::collection::vec(-50i64..50, 4),
    ) {
        let lazy_vars: Vec<TVar<i64>> = init.iter().copied().map(TVar::new).collect();
        let eager_vars: Vec<TVar<i64>> = init.iter().copied().map(TVar::new).collect();
        for (txn, vars) in [
            (Txn::build(), &lazy_vars),
            (eager(), &eager_vars),
        ] {
            txn.try_run(|txn| {
                for &(idx, delta) in &ops {
                    let v = vars[idx].read(txn)?;
                    vars[idx].write(txn, v.wrapping_add(delta))?;
                }
                Ok(())
            }).unwrap();
        }
        let l: Vec<i64> = lazy_vars.iter().map(|v| v.load()).collect();
        let e: Vec<i64> = eager_vars.iter().map(|v| v.load()).collect();
        prop_assert_eq!(l, e);
    }
}
