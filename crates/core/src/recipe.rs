//! Runtime combinators for the four fix recipes.
//!
//! These are thin, *intent-revealing* entry points over the substrate
//! crates: a developer fixing a bug picks the recipe and gets the right
//! combination of atomic regions, revocable locks, preemption priority,
//! backoff and serialization without re-deriving it.

use std::sync::Arc;
use std::time::Duration;
use txfix_stm::{BackoffPolicy, StmResult, Txn, TxnBuilder, TxnError, TxnReport};
use txfix_tmsync::{serial_atomic_with, SerialDomain};

/// **Recipe 1 — replace deadlock-prone locks.** Remove the locks that form
/// the cycle and run every former critical section as an atomic region.
///
/// Functionally identical to [`txfix_stm::atomic`]; having a named entry
/// point keeps fixed call sites self-documenting and lets the benchmark
/// harness attribute costs to recipes.
pub fn replace_locks_atomic<T>(body: impl FnMut(&mut Txn) -> StmResult<T>) -> T {
    txfix_stm::atomic(body)
}

/// **Recipe 2 — wrap all.** Wrap every conflicting code region in an
/// atomic region (with x-calls for I/O inside the region).
///
/// Functionally identical to [`txfix_stm::atomic`].
pub fn wrap_all_atomic<T>(body: impl FnMut(&mut Txn) -> StmResult<T>) -> T {
    txfix_stm::atomic(body)
}

/// Options for [`preemptible`] (Recipe 3).
#[derive(Clone, Debug)]
pub struct PreemptOptions {
    /// Victim priority: lower values abort first when a deadlock cycle
    /// forms. The paper recommends making the *infrequent / low-priority*
    /// thread preemptible; give it a negative priority.
    pub priority: i32,
    /// Backoff between preemptions — exponential with jitter by default,
    /// which is what prevents the livelock discussed in §4.4.
    pub backoff: BackoffPolicy,
    /// Give up after this many attempts (`None` = keep trying).
    pub max_attempts: Option<u64>,
}

impl Default for PreemptOptions {
    fn default() -> Self {
        PreemptOptions {
            priority: -1,
            backoff: BackoffPolicy::ExpJitter {
                base: Duration::from_micros(50),
                max: Duration::from_millis(5),
            },
            max_attempts: None,
        }
    }
}

/// **Recipe 3 — asymmetric deadlock preemption.** Run `body` as an
/// abortable transaction registered as a *preferred deadlock victim*:
/// locks acquired with [`TxMutex::lock_tx`] inside the body are revocable,
/// and when a deadlock cycle forms, this transaction aborts, releases its
/// locks, backs off exponentially and retries — letting the other
/// (unmodified, lock-based) threads make progress.
///
/// The body may also use [`Txn::retry`] in place of a condition-variable
/// wait, the combination used in the Apache-I case study (§5.4.2).
///
/// # Errors
///
/// [`TxnError::RetryLimit`] if `opts.max_attempts` is exhausted;
/// [`TxnError::Cancelled`] if the body cancels.
///
/// [`TxMutex::lock_tx`]: txfix_txlock::TxMutex::lock_tx
pub fn preemptible<T>(
    opts: &PreemptOptions,
    body: impl FnMut(&mut Txn) -> StmResult<T>,
) -> Result<T, TxnError> {
    preemptible_report(opts, body).map(|(v, _)| v)
}

/// Like [`preemptible`], additionally returning the execution report
/// (attempt/preemption counts — the observable cost of Recipe 3).
///
/// # Errors
///
/// Same as [`preemptible`].
pub fn preemptible_report<T>(
    opts: &PreemptOptions,
    mut body: impl FnMut(&mut Txn) -> StmResult<T>,
) -> Result<(T, TxnReport), TxnError> {
    let mut builder = Txn::build().site("recipe3_preemptible").backoff(opts.backoff);
    if let Some(n) = opts.max_attempts {
        builder = builder.max_attempts(n);
    }
    let priority = opts.priority;
    builder.try_run(move |txn| {
        txfix_txlock::enlist_preemptible(txn, priority);
        body(txn)
    })
}

/// **Recipe 4 — wrap unprotected.** Run `body` as an atomic region
/// serialized against every lock-based critical section in `domain`
/// (see [`SerialDomain`]): only the buggy region changes, the code that
/// already uses locks correctly stays untouched.
pub fn wrap_unprotected_atomic<T>(
    domain: &Arc<SerialDomain>,
    body: impl FnMut(&mut Txn) -> StmResult<T>,
) -> T {
    serial_atomic_with(domain, &TxnBuilder::default().site("recipe4_wrap_unprotected"), body)
        .expect("default serial atomic region cannot fail terminally")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use txfix_stm::TVar;
    use txfix_tmsync::SerialMutex;
    use txfix_txlock::TxMutex;

    #[test]
    fn recipe1_and_2_are_atomic_regions() {
        let v = TVar::new(0u32);
        replace_locks_atomic(|txn| v.modify(txn, |x| x + 1));
        wrap_all_atomic(|txn| v.modify(txn, |x| x + 1));
        assert_eq!(v.load(), 2);
    }

    #[test]
    fn preemptible_resolves_ab_ba_against_plain_locks() {
        use std::sync::Barrier;
        let a = Arc::new(TxMutex::new("r3-A", 0u32));
        let b = Arc::new(TxMutex::new("r3-B", 0u32));
        let barrier = Arc::new(Barrier::new(2));

        std::thread::scope(|s| {
            let (a1, b1, bar) = (a.clone(), b.clone(), barrier.clone());
            s.spawn(move || {
                let _ga = a1.lock().unwrap();
                bar.wait();
                let _gb = b1.lock().unwrap();
            });
            let (a2, b2, bar) = (a.clone(), b.clone(), barrier.clone());
            s.spawn(move || {
                let mut synced = false;
                let (_, report) = preemptible_report(&PreemptOptions::default(), |txn| {
                    b2.lock_tx(txn)?;
                    if !synced {
                        synced = true;
                        bar.wait();
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                    a2.lock_tx(txn)
                })
                .unwrap();
                assert!(report.preemptions >= 1, "expected at least one preemption");
            });
        });
        assert!(!a.is_locked() && !b.is_locked());
    }

    #[test]
    fn preemptible_respects_attempt_limit() {
        let r: Result<(), TxnError> =
            preemptible(&PreemptOptions { max_attempts: Some(2), ..Default::default() }, |txn| {
                txn.restart()
            });
        assert_eq!(r, Err(TxnError::RetryLimit { attempts: 2 }));
    }

    #[test]
    fn recipe4_serializes_against_domain_locks() {
        let domain = SerialDomain::new();
        let counter = Arc::new(SerialMutex::new(domain.clone(), 0u64));
        let tv = TVar::new(0u64);
        std::thread::scope(|s| {
            let (d, tv) = (domain.clone(), tv.clone());
            s.spawn(move || {
                for _ in 0..100 {
                    wrap_unprotected_atomic(&d, |txn| tv.modify(txn, |x| x + 1));
                }
            });
            let c = counter.clone();
            s.spawn(move || {
                for _ in 0..100 {
                    *c.lock() += 1;
                }
            });
        });
        assert_eq!(tv.load(), 100);
        assert_eq!(*counter.lock(), 100);
    }
}
