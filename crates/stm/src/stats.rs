//! Global runtime counters.
//!
//! Cheap, always-on statistics useful for tests, benchmark reports and the
//! ablation experiments (commit/abort rates, irrevocable entries, retry
//! blocking). Counters are process-global; use [`StatsSnapshot::delta`]
//! around a region of interest to measure it in isolation.
//!
//! ## Snapshot consistency
//!
//! [`stats`] reads each counter with its own relaxed load, so a snapshot
//! taken while transactions are in flight is not a point-in-time cut: a
//! commit that lands between two of the loads can appear in some counters
//! and not others, and a [`delta`](StatsSnapshot::delta) across such a
//! boundary can be off by the number of transactions mid-flight at either
//! end. That tolerance is fine for the trending and ratio uses the
//! counters serve; when a measurement needs exact edges — the stress
//! driver's per-run abort accounting does — bound it with
//! [`quiescent_stats`] instead.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        #[derive(Default)]
        struct Counters {
            $($name: AtomicU64,)+
        }

        /// A point-in-time copy of the global STM counters.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $($(#[$doc])* pub $name: u64,)+
        }

        impl StatsSnapshot {
            /// Counter-wise difference `self - earlier` (saturating).
            pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.saturating_sub(earlier.$name),)+
                }
            }
        }

        impl Counters {
            fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)+
                }
            }
        }
    };
}

counters! {
    /// Transactions that committed successfully.
    commits,
    /// Aborts caused by read-set validation failure.
    conflicts_validation,
    /// Aborts caused by a busy ownership record.
    conflicts_orec,
    /// Explicit `restart` aborts (the paper's `abort` statement).
    explicit_restarts,
    /// `retry` operations that blocked waiting for a read-set change.
    retries,
    /// Aborts due to being selected as a deadlock victim.
    deadlock_aborts,
    /// Aborts due to an external kill signal.
    kills,
    /// Transactions that became irrevocable (inevitable) at some point.
    irrevocable_entries,
    /// Aborts due to a hardware capacity bound.
    capacity_aborts,
    /// Commit-before-wait suspensions (transactional condition variables).
    waits,
    /// Escalation-ladder rung promotions (graceful degradation).
    escalations,
    /// Faults injected by the chaos layer.
    chaos_injected,
}

static COUNTERS: Counters = Counters {
    commits: AtomicU64::new(0),
    conflicts_validation: AtomicU64::new(0),
    conflicts_orec: AtomicU64::new(0),
    explicit_restarts: AtomicU64::new(0),
    retries: AtomicU64::new(0),
    deadlock_aborts: AtomicU64::new(0),
    kills: AtomicU64::new(0),
    irrevocable_entries: AtomicU64::new(0),
    capacity_aborts: AtomicU64::new(0),
    waits: AtomicU64::new(0),
    escalations: AtomicU64::new(0),
    chaos_injected: AtomicU64::new(0),
};

/// Take a snapshot of the global counters.
///
/// Counter-by-counter relaxed loads: cheap, but not a point-in-time cut
/// while transactions are in flight (see the module docs for the exact
/// tolerance). Use [`quiescent_stats`] for exact region accounting.
pub fn stats() -> StatsSnapshot {
    COUNTERS.snapshot()
}

/// Take a snapshot at a quiescent boundary.
///
/// Acquires the STM's global serialization lock exclusively, which first
/// drains every commit currently inside its publication phase and excludes
/// new ones while the counters are read — so no commit's counter updates
/// are split across the snapshot. For a fully exact region measurement the
/// caller must also have stopped its own worker threads (counter bumps for
/// a commit land just *after* publication releases the lock); the stress
/// driver joins its workers and then calls this.
pub fn quiescent_stats() -> StatsSnapshot {
    let _exclusive = crate::serial::exclusive();
    COUNTERS.snapshot()
}

macro_rules! bump_fns {
    ($($name:ident => $field:ident),+ $(,)?) => {
        $(#[inline]
        pub(crate) fn $name() {
            COUNTERS.$field.fetch_add(1, Ordering::Relaxed);
        })+
    };
}

bump_fns! {
    bump_commits => commits,
    bump_conflicts_validation => conflicts_validation,
    bump_conflicts_orec => conflicts_orec,
    bump_explicit_restarts => explicit_restarts,
    bump_retries => retries,
    bump_deadlock_aborts => deadlock_aborts,
    bump_kills => kills,
    bump_irrevocable => irrevocable_entries,
    bump_capacity => capacity_aborts,
    bump_waits => waits,
    bump_escalations => escalations,
    bump_chaos_injected => chaos_injected,
}

impl StatsSnapshot {
    /// Total aborts of all causes.
    pub fn total_aborts(&self) -> u64 {
        self.conflicts_validation
            + self.conflicts_orec
            + self.explicit_restarts
            + self.deadlock_aborts
            + self.kills
            + self.capacity_aborts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_counterwise() {
        let a = StatsSnapshot { commits: 10, conflicts_orec: 2, ..Default::default() };
        let b = StatsSnapshot { commits: 4, conflicts_orec: 5, ..Default::default() };
        let d = a.delta(&b);
        assert_eq!(d.commits, 6);
        assert_eq!(d.conflicts_orec, 0); // saturating
    }

    #[test]
    fn bumps_are_visible_in_snapshot() {
        let before = stats();
        bump_commits();
        bump_retries();
        let d = stats().delta(&before);
        assert!(d.commits >= 1);
        assert!(d.retries >= 1);
    }

    #[test]
    fn total_aborts_sums_causes() {
        let s = StatsSnapshot {
            conflicts_validation: 1,
            conflicts_orec: 2,
            explicit_restarts: 3,
            deadlock_aborts: 4,
            kills: 5,
            capacity_aborts: 6,
            ..Default::default()
        };
        assert_eq!(s.total_aborts(), 21);
    }
}
