//! Table assembly: re-derive the paper's Tables 1–3 (and the headline
//! aggregates) from a bug dataset.

use crate::analysis::{analyze, Recipe};
use crate::bug::{App, BugKind, BugRecord, Difficulty, MissingSync};
use crate::difficulty::{preference, tm_difficulty, Preference};
use crate::json::{Json, ToJson};
use std::fmt;

/// A minimal aligned-text table for terminal reports.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> TextTable {
        TextTable {
            title: title.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn row<S: ToString>(&mut self, cells: &[S]) -> &mut Self {
        let mut r: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let line: String = widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("+");
        writeln!(f, "{line}")?;
        let hdr: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!(" {:w$} ", h, w = widths[i]))
            .collect();
        writeln!(f, "{}", hdr.join("|"))?;
        writeln!(f, "{line}")?;
        for row in &self.rows {
            let cells: Vec<String> =
                row.iter().enumerate().map(|(i, c)| format!(" {:w$} ", c, w = widths[i])).collect();
            writeln!(f, "{}", cells.join("|"))?;
        }
        writeln!(f, "{line}")
    }
}

impl ToJson for TextTable {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("title", Json::str(self.title.clone())),
            ("columns", Json::strings(&self.headers)),
            ("rows", Json::list(self.rows.iter().map(Json::strings))),
        ])
    }
}

/// Count of bugs per (app, kind) bucket with fixability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FixabilityCell {
    /// Bugs examined.
    pub total: u32,
    /// Bugs TM can fix.
    pub fixable: u32,
}

/// The headline aggregates the paper states in prose; asserted against the
/// dataset by the corpus consistency tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CorpusSummary {
    /// All bugs examined.
    pub total: u32,
    /// Deadlocks examined / fixable.
    pub deadlocks: FixabilityCell,
    /// Atomicity violations examined / fixable.
    pub atomicity: FixabilityCell,
    /// Bugs fixable by the straightforward recipes (1 and 2) alone.
    pub fixed_by_simple_recipes: u32,
    /// Additional bugs only Recipe 3 can fix.
    pub fixed_only_by_recipe3: u32,
    /// Recipe-1 deadlock fixes that Recipe 3 also simplifies.
    pub simplified_by_recipe3: u32,
    /// Recipe-2 AV fixes that Recipe 4 also simplifies.
    pub simplified_by_recipe4: u32,
    /// Fixable bugs where the TM fix is judged preferable.
    pub tm_preferred: u32,
    /// ... split by kind.
    pub tm_preferred_deadlock: u32,
    /// TM-preferred atomicity violations.
    pub tm_preferred_atomicity: u32,
    /// Bugs whose fix was implemented and tested (18 in the paper).
    pub implemented: u32,
    /// Implemented deadlock fixes (7).
    pub implemented_deadlock: u32,
    /// Implemented atomicity fixes (11).
    pub implemented_atomicity: u32,
    /// AV bugs with completely missing synchronization (22).
    pub av_complete_missing: u32,
    /// ... of which TM-fixable (17).
    pub av_complete_missing_fixable: u32,
    /// ... of which fixable with a single atomic block (12).
    pub av_single_block: u32,
    /// ... single-block fixes rated easy (9).
    pub av_single_block_easy: u32,
    /// ... single-block fixes rated medium (3).
    pub av_single_block_medium: u32,
    /// Fixes whose atomic blocks contain condition-variable operations (5).
    pub downcall_condvar: u32,
    /// Fixes using a blocking retry (2).
    pub downcall_retry: u32,
    /// Fixes whose atomic blocks perform I/O (8).
    pub downcall_io: u32,
    /// Fixes with very long atomic actions (7).
    pub downcall_long_action: u32,
    /// Fixes calling other library/module code transactionally.
    pub downcall_library: u32,
    /// Unfixable deadlocks spanning non-preemptible multi-module code (5).
    pub multi_module_non_preemptible: u32,
}

impl CorpusSummary {
    /// Compute every aggregate from a dataset.
    pub fn compute(bugs: &[BugRecord]) -> CorpusSummary {
        let mut s = CorpusSummary { total: bugs.len() as u32, ..Default::default() };
        for bug in bugs {
            let a = analyze(bug);
            let fixable = a.is_fixable();
            match bug.kind {
                BugKind::Deadlock => {
                    s.deadlocks.total += 1;
                    if fixable {
                        s.deadlocks.fixable += 1;
                    }
                }
                BugKind::AtomicityViolation => {
                    s.atomicity.total += 1;
                    if fixable {
                        s.atomicity.fixable += 1;
                    }
                }
            }
            if bug.is_implemented() {
                s.implemented += 1;
                match bug.kind {
                    BugKind::Deadlock => s.implemented_deadlock += 1,
                    BugKind::AtomicityViolation => s.implemented_atomicity += 1,
                }
            }
            if bug.kind == BugKind::AtomicityViolation
                && bug.chars.missing_sync == Some(MissingSync::Complete)
            {
                s.av_complete_missing += 1;
                if fixable {
                    s.av_complete_missing_fixable += 1;
                    if bug.chars.single_atomic_block {
                        s.av_single_block += 1;
                        match tm_difficulty(bug, &a) {
                            Some(Difficulty::Easy) => s.av_single_block_easy += 1,
                            Some(Difficulty::Medium) => s.av_single_block_medium += 1,
                            _ => {}
                        }
                    }
                }
            }
            if let Some(plan) = a.plan() {
                match plan.primary {
                    Recipe::ReplaceLocks | Recipe::WrapAll => s.fixed_by_simple_recipes += 1,
                    Recipe::DeadlockPreemption => s.fixed_only_by_recipe3 += 1,
                    Recipe::WrapUnprotected => {}
                }
                match plan.simplified_by {
                    Some(Recipe::DeadlockPreemption) => s.simplified_by_recipe3 += 1,
                    Some(Recipe::WrapUnprotected) => s.simplified_by_recipe4 += 1,
                    _ => {}
                }
                let d = &bug.chars.downcalls;
                s.downcall_condvar += u32::from(d.condvar);
                s.downcall_retry += u32::from(d.retry);
                s.downcall_io += u32::from(d.io);
                s.downcall_long_action += u32::from(d.long_action);
                s.downcall_library += u32::from(d.library);
                if preference(bug, &a) == Some(Preference::Tm) {
                    s.tm_preferred += 1;
                    match bug.kind {
                        BugKind::Deadlock => s.tm_preferred_deadlock += 1,
                        BugKind::AtomicityViolation => s.tm_preferred_atomicity += 1,
                    }
                }
            } else if bug.kind == BugKind::Deadlock
                && bug.chars.multi_module
                && bug.chars.non_preemptible
            {
                s.multi_module_non_preemptible += 1;
            }
        }
        s
    }

    /// Total fixable bugs.
    pub fn fixable(&self) -> u32 {
        self.deadlocks.fixable + self.atomicity.fixable
    }
}

impl ToJson for FixabilityCell {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("total", Json::int(u64::from(self.total))),
            ("fixable", Json::int(u64::from(self.fixable))),
        ])
    }
}

impl ToJson for CorpusSummary {
    fn to_json_value(&self) -> Json {
        let n = |v: u32| Json::int(u64::from(v));
        Json::obj([
            ("total", n(self.total)),
            ("deadlocks", self.deadlocks.to_json_value()),
            ("atomicity", self.atomicity.to_json_value()),
            ("fixable", n(self.fixable())),
            ("fixed_by_simple_recipes", n(self.fixed_by_simple_recipes)),
            ("fixed_only_by_recipe3", n(self.fixed_only_by_recipe3)),
            ("simplified_by_recipe3", n(self.simplified_by_recipe3)),
            ("simplified_by_recipe4", n(self.simplified_by_recipe4)),
            ("tm_preferred", n(self.tm_preferred)),
            ("tm_preferred_deadlock", n(self.tm_preferred_deadlock)),
            ("tm_preferred_atomicity", n(self.tm_preferred_atomicity)),
            ("implemented", n(self.implemented)),
            ("implemented_deadlock", n(self.implemented_deadlock)),
            ("implemented_atomicity", n(self.implemented_atomicity)),
            ("av_complete_missing", n(self.av_complete_missing)),
            ("av_complete_missing_fixable", n(self.av_complete_missing_fixable)),
            ("av_single_block", n(self.av_single_block)),
            ("av_single_block_easy", n(self.av_single_block_easy)),
            ("av_single_block_medium", n(self.av_single_block_medium)),
            ("downcall_condvar", n(self.downcall_condvar)),
            ("downcall_retry", n(self.downcall_retry)),
            ("downcall_io", n(self.downcall_io)),
            ("downcall_long_action", n(self.downcall_long_action)),
            ("downcall_library", n(self.downcall_library)),
            ("multi_module_non_preemptible", n(self.multi_module_non_preemptible)),
        ])
    }
}

fn bucket(bugs: &[BugRecord], app: App, kind: BugKind) -> FixabilityCell {
    let mut c = FixabilityCell::default();
    for b in bugs.iter().filter(|b| b.app == app && b.kind == kind) {
        c.total += 1;
        if analyze(b).is_fixable() {
            c.fixable += 1;
        }
    }
    c
}

/// Build Table 1: bugs TM can fix, per application and bug type.
pub fn table1(bugs: &[BugRecord]) -> TextTable {
    let mut t = TextTable::new(
        "Table 1. Concurrency bugs that transactional memory can fix",
        &["Bug type", "Application", "Bugs examined", "TM can fix"],
    );
    for kind in [BugKind::Deadlock, BugKind::AtomicityViolation] {
        for app in App::ALL {
            let c = bucket(bugs, app, kind);
            t.row(&[kind.to_string(), app.to_string(), c.total.to_string(), c.fixable.to_string()]);
        }
    }
    let s = CorpusSummary::compute(bugs);
    t.row(&["Total".to_string(), String::new(), s.total.to_string(), s.fixable().to_string()]);
    t
}

/// Build Table 2: difficulty of the developers' vs the TM fixes, for bugs
/// both could fix.
pub fn table2(bugs: &[BugRecord]) -> TextTable {
    let mut t = TextTable::new(
        "Table 2. Characterization of developers' and TM fixes (easy/medium/hard)",
        &["Application", "Dev easy", "Dev med", "Dev hard", "TM easy", "TM med", "TM hard"],
    );
    let mut totals = [0u32; 6];
    for app in App::ALL {
        let mut dev = [0u32; 3];
        let mut tm = [0u32; 3];
        for b in bugs.iter().filter(|b| b.app == app) {
            let a = analyze(b);
            let Some(td) = tm_difficulty(b, &a) else { continue };
            dev[b.dev_fix.difficulty as usize] += 1;
            tm[td as usize] += 1;
        }
        for i in 0..3 {
            totals[i] += dev[i];
            totals[3 + i] += tm[i];
        }
        t.row(&[
            app.to_string(),
            dev[0].to_string(),
            dev[1].to_string(),
            dev[2].to_string(),
            tm[0].to_string(),
            tm[1].to_string(),
            tm[2].to_string(),
        ]);
    }
    let mut row = vec!["Total".to_string()];
    row.extend(totals.iter().map(|v| v.to_string()));
    t.row(&row);
    t
}

/// Build Table 3: downcalls made by the TM fixes' atomic blocks.
pub fn table3(bugs: &[BugRecord]) -> TextTable {
    let mut t = TextTable::new(
        "Table 3. Downcalls performed by atomic blocks of the TM fixes",
        &["Bug type", "Application", "CV", "Retry", "I/O", "LongAction", "Library"],
    );
    for kind in [BugKind::Deadlock, BugKind::AtomicityViolation] {
        for app in App::ALL {
            let mut c = [0u32; 5];
            for b in bugs.iter().filter(|b| b.app == app && b.kind == kind) {
                if !analyze(b).is_fixable() {
                    continue;
                }
                let d = &b.chars.downcalls;
                c[0] += u32::from(d.condvar);
                c[1] += u32::from(d.retry);
                c[2] += u32::from(d.io);
                c[3] += u32::from(d.long_action);
                c[4] += u32::from(d.library);
            }
            t.row(&[
                kind.to_string(),
                app.to_string(),
                c[0].to_string(),
                c[1].to_string(),
                c[2].to_string(),
                c[3].to_string(),
                c[4].to_string(),
            ]);
        }
    }
    let s = CorpusSummary::compute(bugs);
    t.row(&[
        "Total".to_string(),
        String::new(),
        s.downcall_condvar.to_string(),
        s.downcall_retry.to_string(),
        s.downcall_io.to_string(),
        s.downcall_long_action.to_string(),
        s.downcall_library.to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bug::{BugChars, DevFix, Downcalls};

    fn mini_corpus() -> Vec<BugRecord> {
        vec![
            BugRecord {
                id: "A#1",
                app: App::Apache,
                kind: BugKind::Deadlock,
                synthetic_id: true,
                summary: "lock cycle",
                chars: BugChars { lock_cycle: true, fix_sites: 2, ..Default::default() },
                dev_fix: DevFix { difficulty: Difficulty::Hard, loc: 30, attempts: 2 },
                scenario: Some("x"),
            },
            BugRecord {
                id: "A#2",
                app: App::Apache,
                kind: BugKind::AtomicityViolation,
                synthetic_id: true,
                summary: "missing sync",
                chars: BugChars {
                    missing_sync: Some(MissingSync::Complete),
                    single_atomic_block: true,
                    fix_sites: 1,
                    downcalls: Downcalls { io: true, ..Downcalls::NONE },
                    ..Default::default()
                },
                dev_fix: DevFix { difficulty: Difficulty::Medium, loc: 20, attempts: 1 },
                scenario: None,
            },
            BugRecord {
                id: "M#1",
                app: App::Mozilla,
                kind: BugKind::Deadlock,
                synthetic_id: true,
                summary: "design flaw",
                chars: BugChars { design_flaw: true, ..Default::default() },
                dev_fix: DevFix { difficulty: Difficulty::Hard, loc: 50, attempts: 3 },
                scenario: None,
            },
        ]
    }

    #[test]
    fn summary_counts_the_mini_corpus() {
        let s = CorpusSummary::compute(&mini_corpus());
        assert_eq!(s.total, 3);
        assert_eq!(s.deadlocks, FixabilityCell { total: 2, fixable: 1 });
        assert_eq!(s.atomicity, FixabilityCell { total: 1, fixable: 1 });
        assert_eq!(s.fixable(), 2);
        assert_eq!(s.implemented, 1);
        assert_eq!(s.downcall_io, 1);
        assert_eq!(s.av_complete_missing, 1);
        assert_eq!(s.av_single_block_easy, 1);
        assert_eq!(s.simplified_by_recipe3, 1);
        // A#1: TM easy vs dev hard. A#2: TM easy (single block, x-call
        // I/O) vs dev medium. Both TM-preferred.
        assert_eq!(s.tm_preferred, 2);
    }

    #[test]
    fn table1_has_a_row_per_bucket_plus_total() {
        let t = table1(&mini_corpus());
        assert_eq!(t.len(), 7);
        let rendered = t.to_string();
        assert!(rendered.contains("Mozilla"));
        assert!(rendered.contains("Total"));
    }

    #[test]
    fn table_render_is_aligned() {
        let mut t = TextTable::new("T", &["a", "bbbb"]);
        t.row(&["xxxxx", "y"]);
        let out = t.to_string();
        let lines: Vec<&str> = out.lines().collect();
        // header row and data row have equal width
        assert_eq!(lines[2].len(), lines[4].len());
    }

    #[test]
    fn tables_2_and_3_render() {
        let bugs = mini_corpus();
        let t2 = table2(&bugs).to_string();
        let t3 = table3(&bugs).to_string();
        assert!(t2.contains("TM easy"));
        assert!(t3.contains("LongAction"));
    }
}
