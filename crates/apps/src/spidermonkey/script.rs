//! The SunSpider stand-in: a multi-threaded script workload over an
//! [`ObjectStore`].
//!
//! Paper §5.4.1 runs four threads executing the same SunSpider script:
//! "even if scripts do not share data, we are still able to exercise the
//! multithreaded code path because all threads run within the same
//! runtime". Accordingly the workload is dominated by thread-local object
//! accesses (where the ownership fast path shines and software-TM barriers
//! hurt), with occasional cross-object moves through the shared runtime
//! (the deadlock-prone path).

use super::store::ObjectStore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Workload shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScriptParams {
    /// Interpreter threads (the paper uses 4).
    pub threads: usize,
    /// Thread-local objects per thread.
    pub objects_per_thread: usize,
    /// Slots per object.
    pub slots: usize,
    /// Objects shared by all threads (the "runtime" objects).
    pub shared_objects: usize,
    /// Script operations per thread.
    pub iterations: u64,
    /// One cross-object move per this many local operations.
    pub cross_object_period: u64,
    /// Non-synchronization interpreter work per operation, in nanoseconds
    /// (busy-wait). Benchmarks set this so the synchronization fraction of
    /// the workload matches a property-access-heavy interpreter loop.
    pub compute_ns: u64,
}

impl Default for ScriptParams {
    fn default() -> Self {
        ScriptParams {
            threads: 4,
            objects_per_thread: 8,
            slots: 8,
            shared_objects: 4,
            iterations: 20_000,
            cross_object_period: 64,
            compute_ns: 0,
        }
    }
}

fn busy_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

impl ScriptParams {
    /// Total objects the store must provide for these parameters.
    pub fn total_objects(&self) -> usize {
        self.threads * self.objects_per_thread + self.shared_objects
    }

    /// Index of thread `t`'s `i`-th local object.
    pub fn local_object(&self, t: usize, i: usize) -> usize {
        t * self.objects_per_thread + (i % self.objects_per_thread)
    }

    /// Index of the `i`-th shared object.
    pub fn shared_object(&self, i: usize) -> usize {
        self.threads * self.objects_per_thread + (i % self.shared_objects)
    }
}

/// Outcome of a workload run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadResult {
    /// Total operations completed across threads.
    pub total_ops: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Throughput.
    pub ops_per_sec: f64,
    /// Cross-object moves abandoned (deadlock timeouts in the buggy
    /// ownership variant; always 0 for correct variants).
    pub abandoned: u64,
}

/// Run the script workload and measure throughput.
pub fn run_script_workload(store: &dyn ObjectStore, p: &ScriptParams) -> WorkloadResult {
    assert!(
        store.object_count() >= p.total_objects(),
        "store has {} objects but params need {}",
        store.object_count(),
        p.total_objects()
    );
    let abandoned = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..p.threads {
            let abandoned = &abandoned;
            s.spawn(move || {
                let mut acc: i64 = t as i64 + 1;
                for i in 0..p.iterations {
                    let obj = p.local_object(t, i as usize);
                    let slot = (i as usize) % p.slots;
                    // get / compute / set: the interpreter's inner loop.
                    let v = store.get_slot(t, obj, slot);
                    acc = acc.wrapping_mul(31).wrapping_add(v ^ i as i64);
                    busy_ns(p.compute_ns);
                    store.set_slot(t, obj, slot, acc & 0xffff);
                    if i % p.cross_object_period == p.cross_object_period - 1 {
                        // Touch the shared runtime: the contended path.
                        let shared = p.shared_object((i / p.cross_object_period) as usize + t);
                        if !store.move_slot(t, obj, shared, slot) {
                            abandoned.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                // End of the script: release any thread-affine state so
                // late claimants are not stranded.
                store.quiesce(t);
            });
        }
    });
    let elapsed = start.elapsed();
    let total_ops = p.threads as u64 * p.iterations;
    WorkloadResult {
        total_ops,
        elapsed,
        ops_per_sec: total_ops as f64 / elapsed.as_secs_f64().max(1e-9),
        abandoned: abandoned.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spidermonkey::{OwnershipMode, OwnershipStore, PreemptStore, StmStore};

    fn small() -> ScriptParams {
        ScriptParams { threads: 2, iterations: 2_000, ..Default::default() }
    }

    #[test]
    fn params_index_math() {
        let p = ScriptParams::default();
        assert_eq!(p.total_objects(), 4 * 8 + 4);
        assert_eq!(p.local_object(1, 0), 8);
        assert!(p.shared_object(3) >= 32);
        assert!(p.shared_object(999) < p.total_objects());
    }

    #[test]
    fn workload_runs_on_dev_fix_without_abandonment() {
        let p = small();
        let store = OwnershipStore::new(OwnershipMode::DevFix, p.total_objects(), p.slots);
        let r = run_script_workload(&store, &p);
        assert_eq!(r.total_ops, 4_000);
        assert_eq!(r.abandoned, 0);
        assert!(r.ops_per_sec > 0.0);
    }

    #[test]
    fn workload_runs_on_tm_stores() {
        let p = small();
        let stm = StmStore::uninstrumented(p.total_objects(), p.slots);
        assert_eq!(run_script_workload(&stm, &p).abandoned, 0);
        let pre = PreemptStore::new(p.total_objects(), p.slots);
        assert_eq!(run_script_workload(&pre, &p).abandoned, 0);
    }
}
