//! A miniature in-memory operating system.
//!
//! The paper's xCalls library wraps real POSIX system calls. This
//! reproduction has no kernel to wrap, so it provides the smallest OS
//! surface the studied bugs touch: a filesystem with appendable files
//! (Apache's access/error logs, MySQL's binlog), bounded pipes (the
//! Apache#7617 cross-process pipe race, Mozilla's lost I/O notifications)
//! and loopback socket pairs (request/response traffic for the simulated
//! servers). Everything is plain, non-transactional state — exactly like a
//! kernel — and the transactional semantics are layered on top by the
//! [`crate`] root's x-call wrappers.

use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Errors from the simulated OS.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OsError {
    /// Path not present in the filesystem.
    NotFound(String),
    /// Path already present on exclusive create.
    AlreadyExists(String),
    /// Reading from or writing to a closed pipe/socket.
    Closed,
    /// A blocking read timed out.
    TimedOut,
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsError::NotFound(p) => write!(f, "no such file: {p}"),
            OsError::AlreadyExists(p) => write!(f, "file exists: {p}"),
            OsError::Closed => write!(f, "endpoint closed"),
            OsError::TimedOut => write!(f, "operation timed out"),
        }
    }
}

impl std::error::Error for OsError {}

/// An in-memory file: a growable byte array with append/truncate/read.
pub struct SimFile {
    name: String,
    data: Mutex<Vec<u8>>,
}

impl fmt::Debug for SimFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimFile").field("name", &self.name).field("len", &self.len()).finish()
    }
}

impl SimFile {
    fn new(name: &str) -> Arc<SimFile> {
        Arc::new(SimFile { name: name.to_owned(), data: Mutex::new(Vec::new()) })
    }

    /// The file's path within its filesystem.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append raw bytes (the non-transactional "system call").
    pub fn append(&self, bytes: &[u8]) {
        self.data.lock().extend_from_slice(bytes);
    }

    /// Write at an absolute offset, growing the file if needed.
    pub fn write_at(&self, offset: usize, bytes: &[u8]) {
        let mut d = self.data.lock();
        if d.len() < offset + bytes.len() {
            d.resize(offset + bytes.len(), 0);
        }
        d[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Snapshot of the whole contents.
    pub fn read_all(&self) -> Vec<u8> {
        self.data.lock().clone()
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.lock().len()
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Truncate to `len` bytes (no-op if already shorter). Used by x-call
    /// compensation to undo appends.
    pub fn truncate(&self, len: usize) {
        self.data.lock().truncate(len);
    }
}

/// An in-memory filesystem: a namespace of [`SimFile`]s.
#[derive(Default)]
pub struct SimFs {
    files: Mutex<HashMap<String, Arc<SimFile>>>,
}

impl fmt::Debug for SimFs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimFs").field("files", &self.files.lock().len()).finish()
    }
}

impl SimFs {
    /// An empty filesystem.
    pub fn new() -> Arc<SimFs> {
        Arc::new(SimFs::default())
    }

    /// Open `path`, creating it if absent.
    pub fn open_or_create(&self, path: &str) -> Arc<SimFile> {
        self.files.lock().entry(path.to_owned()).or_insert_with(|| SimFile::new(path)).clone()
    }

    /// Open an existing file.
    ///
    /// # Errors
    ///
    /// [`OsError::NotFound`] if `path` does not exist.
    pub fn open(&self, path: &str) -> Result<Arc<SimFile>, OsError> {
        self.files.lock().get(path).cloned().ok_or_else(|| OsError::NotFound(path.to_owned()))
    }

    /// Create `path` exclusively.
    ///
    /// # Errors
    ///
    /// [`OsError::AlreadyExists`] if `path` exists.
    pub fn create_exclusive(&self, path: &str) -> Result<Arc<SimFile>, OsError> {
        let mut files = self.files.lock();
        if files.contains_key(path) {
            return Err(OsError::AlreadyExists(path.to_owned()));
        }
        let f = SimFile::new(path);
        files.insert(path.to_owned(), f.clone());
        Ok(f)
    }

    /// Remove a file from the namespace.
    ///
    /// # Errors
    ///
    /// [`OsError::NotFound`] if `path` does not exist.
    pub fn remove(&self, path: &str) -> Result<(), OsError> {
        self.files.lock().remove(path).map(|_| ()).ok_or_else(|| OsError::NotFound(path.to_owned()))
    }

    /// Paths currently present, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut v: Vec<String> = self.files.lock().keys().cloned().collect();
        v.sort();
        v
    }
}

struct PipeState {
    buf: VecDeque<u8>,
    write_closed: bool,
    read_closed: bool,
}

/// A bounded, blocking byte pipe (kernel pipe / socket buffer stand-in).
pub struct SimPipe {
    state: Mutex<PipeState>,
    readable: Condvar,
    writable: Condvar,
    capacity: usize,
}

impl fmt::Debug for SimPipe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.state.lock();
        f.debug_struct("SimPipe")
            .field("buffered", &s.buf.len())
            .field("capacity", &self.capacity)
            .field("write_closed", &s.write_closed)
            .finish()
    }
}

impl SimPipe {
    /// A pipe buffering at most `capacity` bytes.
    pub fn new(capacity: usize) -> Arc<SimPipe> {
        Arc::new(SimPipe {
            state: Mutex::new(PipeState {
                buf: VecDeque::new(),
                write_closed: false,
                read_closed: false,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity: capacity.max(1),
        })
    }

    /// Write all of `bytes`, blocking while the pipe is full.
    ///
    /// # Errors
    ///
    /// [`OsError::Closed`] if the read end has been closed.
    pub fn write(&self, bytes: &[u8]) -> Result<(), OsError> {
        let mut remaining = bytes;
        let mut s = self.state.lock();
        while !remaining.is_empty() {
            if s.read_closed {
                return Err(OsError::Closed);
            }
            let room = self.capacity.saturating_sub(s.buf.len());
            if room == 0 {
                self.writable.wait(&mut s);
                continue;
            }
            let n = room.min(remaining.len());
            s.buf.extend(&remaining[..n]);
            remaining = &remaining[n..];
            self.readable.notify_all();
        }
        Ok(())
    }

    /// Read up to `max` bytes, blocking until data is available, the write
    /// end closes (then returns the remaining bytes, possibly empty) or
    /// `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`OsError::TimedOut`] if nothing arrived in time.
    pub fn read(&self, max: usize, timeout: Duration) -> Result<Vec<u8>, OsError> {
        let mut s = self.state.lock();
        loop {
            if !s.buf.is_empty() {
                let n = max.min(s.buf.len());
                let out: Vec<u8> = s.buf.drain(..n).collect();
                self.writable.notify_all();
                return Ok(out);
            }
            if s.write_closed {
                return Ok(Vec::new());
            }
            if self.readable.wait_for(&mut s, timeout).timed_out() && s.buf.is_empty() {
                return Err(OsError::TimedOut);
            }
        }
    }

    /// Read without blocking; `None` when no data is buffered.
    pub fn try_read(&self, max: usize) -> Option<Vec<u8>> {
        let mut s = self.state.lock();
        if s.buf.is_empty() {
            return None;
        }
        let n = max.min(s.buf.len());
        let out: Vec<u8> = s.buf.drain(..n).collect();
        self.writable.notify_all();
        Some(out)
    }

    /// Push bytes back to the *front* of the pipe — the compensation x-call
    /// reads use to undo a consumed read on abort.
    pub fn unread(&self, bytes: &[u8]) {
        let mut s = self.state.lock();
        for &b in bytes.iter().rev() {
            s.buf.push_front(b);
        }
        self.readable.notify_all();
    }

    /// Bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.state.lock().buf.len()
    }

    /// Close the write end; readers drain the remainder then see EOF.
    pub fn close_write(&self) {
        self.state.lock().write_closed = true;
        self.readable.notify_all();
    }

    /// Close the read end; writers see [`OsError::Closed`].
    pub fn close_read(&self) {
        self.state.lock().read_closed = true;
        self.writable.notify_all();
    }
}

/// A bidirectional loopback connection: two pipes.
#[derive(Debug, Clone)]
pub struct SimSocket {
    /// Incoming bytes (peer → us).
    pub rx: Arc<SimPipe>,
    /// Outgoing bytes (us → peer).
    pub tx: Arc<SimPipe>,
}

impl SimSocket {
    /// Create a connected pair of sockets with the given per-direction
    /// buffer capacity.
    pub fn pair(capacity: usize) -> (SimSocket, SimSocket) {
        let a_to_b = SimPipe::new(capacity);
        let b_to_a = SimPipe::new(capacity);
        (SimSocket { rx: b_to_a.clone(), tx: a_to_b.clone() }, SimSocket { rx: a_to_b, tx: b_to_a })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_append_and_read() {
        let fs = SimFs::new();
        let f = fs.open_or_create("/var/log/access.log");
        f.append(b"GET /");
        f.append(b" 200\n");
        assert_eq!(f.read_all(), b"GET / 200\n");
        assert_eq!(f.len(), 10);
    }

    #[test]
    fn file_truncate_undoes_append() {
        let fs = SimFs::new();
        let f = fs.open_or_create("f");
        f.append(b"keep");
        let mark = f.len();
        f.append(b"undo");
        f.truncate(mark);
        assert_eq!(f.read_all(), b"keep");
    }

    #[test]
    fn write_at_grows_file() {
        let fs = SimFs::new();
        let f = fs.open_or_create("f");
        f.write_at(3, b"xy");
        assert_eq!(f.read_all(), vec![0, 0, 0, b'x', b'y']);
    }

    #[test]
    fn fs_namespace_operations() {
        let fs = SimFs::new();
        assert!(fs.open("missing").is_err());
        fs.open_or_create("b");
        fs.open_or_create("a");
        assert_eq!(fs.list(), vec!["a".to_string(), "b".to_string()]);
        assert!(fs.create_exclusive("a").is_err());
        fs.remove("a").unwrap();
        assert!(fs.open("a").is_err());
        assert_eq!(fs.remove("a"), Err(OsError::NotFound("a".into())));
    }

    #[test]
    fn same_handle_for_same_path() {
        let fs = SimFs::new();
        let f1 = fs.open_or_create("shared");
        let f2 = fs.open("shared").unwrap();
        f1.append(b"x");
        assert_eq!(f2.read_all(), b"x");
    }

    #[test]
    fn pipe_roundtrip() {
        let p = SimPipe::new(16);
        p.write(b"hello").unwrap();
        assert_eq!(p.read(5, Duration::from_millis(100)).unwrap(), b"hello");
    }

    #[test]
    fn pipe_read_times_out_when_empty() {
        let p = SimPipe::new(4);
        assert_eq!(p.read(1, Duration::from_millis(20)), Err(OsError::TimedOut));
    }

    #[test]
    fn pipe_blocks_writer_at_capacity() {
        let p = SimPipe::new(4);
        p.write(b"1234").unwrap();
        std::thread::scope(|s| {
            let p2 = p.clone();
            s.spawn(move || p2.write(b"56").unwrap());
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(p.buffered(), 4, "writer should be blocked at capacity");
            assert_eq!(p.read(4, Duration::from_millis(100)).unwrap(), b"1234");
            assert_eq!(p.read(2, Duration::from_millis(500)).unwrap(), b"56");
        });
    }

    #[test]
    fn unread_restores_order() {
        let p = SimPipe::new(16);
        p.write(b"abcdef").unwrap();
        let first = p.read(3, Duration::from_millis(100)).unwrap();
        assert_eq!(first, b"abc");
        p.unread(&first);
        assert_eq!(p.read(6, Duration::from_millis(100)).unwrap(), b"abcdef");
    }

    #[test]
    fn closed_write_end_yields_eof() {
        let p = SimPipe::new(8);
        p.write(b"zz").unwrap();
        p.close_write();
        assert_eq!(p.read(8, Duration::from_millis(100)).unwrap(), b"zz");
        assert_eq!(p.read(8, Duration::from_millis(100)).unwrap(), b"");
    }

    #[test]
    fn closed_read_end_rejects_writes() {
        let p = SimPipe::new(8);
        p.close_read();
        assert_eq!(p.write(b"x"), Err(OsError::Closed));
    }

    #[test]
    fn socket_pair_is_cross_wired() {
        let (a, b) = SimSocket::pair(64);
        a.tx.write(b"ping").unwrap();
        assert_eq!(b.rx.read(4, Duration::from_millis(100)).unwrap(), b"ping");
        b.tx.write(b"pong").unwrap();
        assert_eq!(a.rx.read(4, Duration::from_millis(100)).unwrap(), b"pong");
    }

    #[test]
    fn concurrent_pipe_producers_and_consumer_conserve_bytes() {
        let p = SimPipe::new(32);
        let total: usize = 4 * 256;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = p.clone();
                s.spawn(move || {
                    for _ in 0..256 {
                        p.write(&[7u8]).unwrap();
                    }
                });
            }
            let p = p.clone();
            s.spawn(move || {
                let mut got = 0;
                while got < total {
                    got += p.read(64, Duration::from_secs(5)).unwrap().len();
                }
                assert_eq!(got, total);
            });
        });
    }
}
