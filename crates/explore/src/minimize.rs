//! Greedy preemption minimization for failing schedules.
//!
//! A raw failing trace (especially from PCT) is full of incidental
//! context switches. The minimizer re-executes the scenario with hybrid
//! pickers that follow the failing schedule's *thread* choices for a
//! prefix and then go non-preemptive (keep running the current thread
//! while it is runnable), and keeps the shortest prefix that still fails.
//! This is greedy and bounded — not an optimal reduction — but it
//! reliably collapses the tail of a failure trace to the few switches
//! that matter, which is what a human replaying the schedule wants.

use crate::runner::{run_schedule, RunResult, ScheduleOutcome};
use txfix_corpus::{ScheduledRun, Variant};
use txfix_stm::sched::{Pick, Picker};

/// Cap on minimization re-executions.
const MAX_ATTEMPTS: usize = 64;

/// A picker that follows `slots` (the failing schedule's thread-per-step
/// sequence) for the first `cut` decisions, then schedules cooperatively:
/// stay on the thread that ran last while it is still a candidate, else
/// fall back to the lowest slot.
fn hybrid_picker(slots: Vec<usize>, cut: usize) -> Picker {
    let mut depth = 0usize;
    let mut last: Option<usize> = None;
    Box::new(move |cands| {
        let want = if depth < cut { slots.get(depth).copied() } else { last };
        let choice = want.and_then(|slot| cands.iter().position(|&(s, _)| s == slot)).unwrap_or(0);
        last = Some(cands[choice].0);
        depth += 1;
        Pick::Choose(choice)
    })
}

/// Minimize a failing schedule. `slots` is the per-decision thread
/// sequence of the original failure (`RunLog::events` slots). Returns the
/// outcome of the best (fewest-preemption) still-failing run — at worst
/// the original failure re-executed verbatim.
pub fn minimize_failure(
    build: &dyn Fn(Variant) -> ScheduledRun,
    variant: Variant,
    max_steps: u64,
    slots: Vec<usize>,
) -> Option<ScheduleOutcome> {
    let mut best: Option<ScheduleOutcome> = None;
    // Ascending cuts: the smallest forced prefix that still fails gives
    // the fewest incidental switches. Cut len(slots) replays verbatim.
    let mut cuts: Vec<usize> = (0..=slots.len()).collect();
    if cuts.len() > MAX_ATTEMPTS {
        // Keep full replay as the final fallback, sample the rest evenly.
        let stride = cuts.len().div_ceil(MAX_ATTEMPTS);
        cuts = (0..=slots.len()).step_by(stride).chain([slots.len()]).collect();
    }
    for cut in cuts {
        let outcome = run_schedule(build(variant), max_steps, hybrid_picker(slots.clone(), cut));
        if let RunResult::Bug(_) = outcome.result {
            best = Some(outcome);
            break;
        }
    }
    best
}
