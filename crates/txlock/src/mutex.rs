//! Revocable, deadlock-detecting mutexes (the paper's TxLocks, §5.1).
//!
//! A [`TxMutex`] can be used two ways:
//!
//! - **Non-transactionally** via [`TxMutex::lock`]: an ordinary RAII mutex,
//!   except that blocking acquisitions participate in the global wait-for
//!   graph, so a circular wait is *detected* and returned as a
//!   [`DeadlockError`] instead of hanging forever. The buggy variants of
//!   the corpus scenarios rely on this to demonstrate deadlocks safely.
//! - **Transactionally** via [`TxMutex::lock_tx`]: the lock is acquired on
//!   behalf of an STM transaction, held until the transaction commits, and
//!   *released automatically if the transaction aborts*. If a deadlock
//!   cycle forms, the detector preempts one of the participating
//!   transactions (it aborts with [`Abort::Deadlock`], releasing its locks)
//!   — the mechanism behind fix Recipe 3.

use crate::error::DeadlockError;
use crate::graph::{self, CycleResolution, LockId};
use crate::thread_id::{self, ThreadToken};
use parking_lot::{Condvar, Mutex};
use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use txfix_stm::chaos;
use txfix_stm::sched;
use txfix_stm::trace;
use txfix_stm::{Abort, StmResult, TxResource, Txn};

static NEXT_LOCK_ID: AtomicU64 = AtomicU64::new(1);

/// How long one blocked wait lasts before re-checking kill flags. Deadlock
/// cycles are detected eagerly on blocking; this only bounds kill latency.
const WAIT_SLICE: Duration = Duration::from_millis(1);

pub(crate) enum AcquireError {
    /// The caller's transaction was selected as the deadlock victim.
    SelfVictim,
    /// The caller's transaction was killed externally while waiting.
    Killed,
    /// True deadlock: no abortable participant.
    Deadlock(Vec<String>),
}

pub(crate) struct RawTxLock {
    id: LockId,
    name: String,
    state: Mutex<Option<ThreadToken>>,
    cv: Condvar,
    /// Serial of the transaction holding this lock transactionally, or 0.
    holding_txn: AtomicU64,
}

impl graph::OwnerQuery for RawTxLock {
    fn current_owner(&self) -> Option<ThreadToken> {
        *self.state.lock()
    }
    fn lock_name(&self) -> &str {
        &self.name
    }
}

impl RawTxLock {
    pub(crate) fn new(name: &str) -> Arc<RawTxLock> {
        let id = LockId(NEXT_LOCK_ID.fetch_add(1, Ordering::Relaxed));
        let lock = Arc::new(RawTxLock {
            id,
            name: name.to_owned(),
            state: Mutex::new(None),
            cv: Condvar::new(),
            holding_txn: AtomicU64::new(0),
        });
        let weak = Arc::downgrade(&lock) as std::sync::Weak<dyn graph::OwnerQuery>;
        graph::register_lock(id, weak);
        lock
    }

    pub(crate) fn name(&self) -> &str {
        &self.name
    }

    pub(crate) fn owner(&self) -> Option<ThreadToken> {
        *self.state.lock()
    }

    pub(crate) fn try_acquire(&self, me: ThreadToken) -> bool {
        sched::yield_point(sched::SyncOp::LockAcquire(self.id.0));
        let mut st = self.state.lock();
        if st.is_none() {
            *st = Some(me);
            drop(st);
            // A failed try-lock cannot deadlock (the thread never blocks),
            // so its order edge is only recorded on success.
            crate::lockdep::note_attempt(self.id, &self.name, false);
            crate::lockdep::note_acquired(self.id);
            self.trace_acquired();
            true
        } else {
            false
        }
    }

    pub(crate) fn acquire(
        &self,
        me: ThreadToken,
        kill: Option<&txfix_stm::KillHandle>,
    ) -> Result<(), AcquireError> {
        // Record the order edge (and trace event) before the acquisition
        // can block: a deadlocked attempt must still leave its evidence.
        // Revocable acquisitions (`kill` present ⇒ called from `lock_tx`
        // inside a transaction) are preemptible: a cycle through them is
        // resolved by aborting the transaction, not reported as a hazard.
        let preemptible = kill.is_some();
        sched::yield_point(sched::SyncOp::LockAcquire(self.id.0));
        crate::lockdep::note_attempt(self.id, &self.name, preemptible);
        self.trace_attempt(preemptible);
        let mut registered_wait = false;
        loop {
            {
                let mut st = self.state.lock();
                match *st {
                    None => {
                        *st = Some(me);
                        drop(st);
                        if registered_wait {
                            graph::clear_wait(me);
                        }
                        crate::lockdep::note_acquired(self.id);
                        self.trace_acquired();
                        return Ok(());
                    }
                    Some(owner) if owner == me => {
                        panic!("non-reentrant TxMutex \"{}\" acquired twice by {me}", self.name);
                    }
                    Some(_) => {}
                }
            }

            registered_wait = true;
            match graph::block_and_check(me, self.id) {
                CycleResolution::NoCycle => {}
                CycleResolution::OtherVictim(_) => {
                    // The victim may be parked on the deterministic
                    // scheduler; wake every parked thread so it observes
                    // its kill flag and aborts (no-op outside a run).
                    sched::wake_all();
                }
                CycleResolution::SelfVictim => return Err(AcquireError::SelfVictim),
                CycleResolution::Unresolvable(cycle) => return Err(AcquireError::Deadlock(cycle)),
            }

            if sched::is_controlled() {
                // Scheduled run: park on the scheduler until the holder's
                // release (or a revocation) signals this lock, then re-try
                // the acquisition — handoff order stays a schedule choice.
                let op = sched::SyncOp::LockAcquire(self.id.0);
                sched::block_on(op.resource().expect("lock ops have a resource"), op);
            } else {
                let mut st = self.state.lock();
                if st.is_some() {
                    self.cv.wait_for(&mut st, WAIT_SLICE);
                }
            }

            if let Some(k) = kill {
                if k.is_killed() {
                    graph::clear_wait(me);
                    return Err(AcquireError::Killed);
                }
            }
        }
    }

    pub(crate) fn release(&self, me: ThreadToken) {
        // Canary: the release never happens — the classic "forgot to
        // unlock on this path" bug. The lock stays held by a thread that
        // has moved on; every later acquirer blocks forever.
        #[cfg(feature = "canary-txlock")]
        if txfix_stm::canary::fire(txfix_stm::canary::Canary::LockDropRelease) {
            return;
        }
        let op = sched::SyncOp::LockRelease(self.id.0);
        sched::yield_point(op);
        let mut st = self.state.lock();
        assert_eq!(*st, Some(me), "TxMutex \"{}\" released by non-owner", self.name);
        *st = None;
        self.holding_txn.store(0, Ordering::Release);
        // Emit while the state lock is still held: no waiter can observe the
        // mutex free (and emit its LockAcquired) before this event lands, so
        // trace order stays a valid linearization for happens-before replay.
        trace::emit(trace::EventKind::LockReleased { lock: self.id.0 });
        drop(st);
        crate::lockdep::note_released(self.id);
        self.cv.notify_all();
        // Scheduled waiters park on the scheduler, not on `cv`.
        sched::signal(op.resource().expect("lock ops have a resource"));
    }

    fn trace_attempt(&self, preemptible: bool) {
        if !trace::is_enabled() {
            return;
        }
        trace::emit(trace::EventKind::LockAttempt {
            lock: self.id.0,
            name: self.name.clone(),
            preemptible,
        });
    }

    fn trace_acquired(&self) {
        if !trace::is_enabled() {
            return;
        }
        trace::emit(trace::EventKind::LockAcquired { lock: self.id.0, name: self.name.clone() });
    }
}

impl Drop for RawTxLock {
    fn drop(&mut self) {
        graph::unregister_lock(self.id);
    }
}

/// Resource enlisted in a transaction: releases the lock when the
/// transaction finishes (commit *or* abort).
struct LockRelease {
    raw: Arc<RawTxLock>,
    owner: ThreadToken,
}

impl TxResource for LockRelease {
    fn commit(&self, _serial: u64) {
        self.raw.release(self.owner);
    }
    fn abort(&self, _serial: u64) {
        // An abort-path release is a *revocation*: the lock is taken away
        // from a still-running transaction (the TxLock discipline).
        txfix_stm::obs::note_lock_revoked();
        // Canary: a buggy revocation that briefly releases the lock and
        // then blindly takes it back before releasing "for real". If a
        // waiter slips into the window, the re-acquisition fails and the
        // final release fires the non-owner assertion — mutual exclusion
        // was already forfeited the moment the waiter got in.
        #[cfg(feature = "canary-txlock")]
        if txfix_stm::canary::fire(txfix_stm::canary::Canary::LockReacquireInRevoke) {
            self.raw.release(self.owner);
            self.raw.try_acquire(self.owner);
        }
        self.raw.release(self.owner);
    }
}

/// Resource that removes the thread's "abortable transaction" registration
/// from the wait-for graph when the transaction finishes.
struct TxnUnregister {
    thread: ThreadToken,
}

impl TxResource for TxnUnregister {
    fn commit(&self, _serial: u64) {
        graph::unregister_txn_thread(self.thread);
    }
    fn abort(&self, _serial: u64) {
        graph::unregister_txn_thread(self.thread);
    }
}

/// Register the calling thread's transaction as a *preemptible* deadlock
/// victim with an explicit `priority` (lower aborts first), and arrange for
/// the registration to be removed when the transaction finishes.
///
/// [`TxMutex::lock_tx`] registers transactions automatically at priority 0;
/// call this at the top of a Recipe 3 transaction body to mark it as the
/// *preferred* victim ("preferably the preemptible thread should be low
/// priority", paper §4.4).
pub fn enlist_preemptible(txn: &mut Txn, priority: i32) {
    let me = thread_id::current();
    if graph::register_txn_thread_if_new(me, txn.kill_handle(), priority) {
        txn.enlist(Arc::new(TxnUnregister { thread: me }));
    }
}

/// A revocable, deadlock-detecting mutual-exclusion lock protecting a `T`.
///
/// See the crate-level docs for the two usage modes.
///
/// `TxMutex` is **not reentrant**: re-acquiring non-transactionally panics,
/// while [`lock_tx`](TxMutex::lock_tx) by the same transaction is an
/// idempotent no-op (the lock is already held to commit).
pub struct TxMutex<T> {
    raw: Arc<RawTxLock>,
    data: UnsafeCell<T>,
}

// Safety: access to `data` is serialized by the raw lock protocol; the
// value moves between threads only through lock handoff.
unsafe impl<T: Send> Send for TxMutex<T> {}
unsafe impl<T: Send> Sync for TxMutex<T> {}

impl<T: fmt::Debug> fmt::Debug for TxMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxMutex")
            .field("name", &self.raw.name())
            .field("owner", &self.raw.owner())
            .finish()
    }
}

impl<T> TxMutex<T> {
    /// Create a named lock. Names appear in deadlock-cycle reports.
    pub fn new(name: &str, value: T) -> TxMutex<T> {
        TxMutex { raw: RawTxLock::new(name), data: UnsafeCell::new(value) }
    }

    /// The lock's diagnostic name.
    pub fn name(&self) -> &str {
        self.raw.name()
    }

    /// Whether any thread currently holds the lock.
    pub fn is_locked(&self) -> bool {
        self.raw.owner().is_some()
    }

    /// Acquire non-transactionally, blocking; detects deadlock.
    ///
    /// # Errors
    ///
    /// [`DeadlockError`] if this acquisition completes a circular wait that
    /// no participating transaction can be aborted to resolve. The caller
    /// still holds whatever locks it held; dropping them unblocks the other
    /// participants.
    pub fn lock(&self) -> Result<TxMutexGuard<'_, T>, DeadlockError> {
        let me = thread_id::current();
        match self.raw.acquire(me, None) {
            Ok(()) => Ok(TxMutexGuard { lock: self, owner: me }),
            Err(AcquireError::Deadlock(cycle)) => Err(DeadlockError { cycle }),
            Err(AcquireError::SelfVictim) | Err(AcquireError::Killed) => {
                unreachable!("non-transactional acquire cannot be victimized")
            }
        }
    }

    /// Try to acquire non-transactionally without blocking.
    pub fn try_lock(&self) -> Option<TxMutexGuard<'_, T>> {
        let me = thread_id::current();
        if self.raw.try_acquire(me) {
            Some(TxMutexGuard { lock: self, owner: me })
        } else {
            None
        }
    }

    /// Acquire on behalf of `txn`: held until commit, released on abort
    /// (the TxLock discipline). Registers the transaction as an abortable
    /// deadlock-victim candidate.
    ///
    /// # Errors
    ///
    /// - [`Abort::Deadlock`] if this transaction was chosen as the victim
    ///   of a deadlock cycle — the runtime re-executes it after backoff;
    /// - [`Abort::Killed`] if an external detector killed the transaction
    ///   while it was waiting.
    pub fn lock_tx(&self, txn: &mut Txn) -> StmResult<()> {
        let me = thread_id::current();

        if self.raw.owner() == Some(me) {
            let holder = self.raw.holding_txn.load(Ordering::Acquire);
            assert_eq!(
                holder,
                txn.serial(),
                "TxMutex \"{}\" already held by this thread outside the transaction",
                self.raw.name()
            );
            return Ok(());
        }

        if graph::register_txn_thread_if_new(me, txn.kill_handle(), 0) {
            txn.enlist(Arc::new(TxnUnregister { thread: me }));
        }

        // Chaos hooks (irrevocable transactions are exempt — they cannot
        // roll back, so a forced failure here would be unrecoverable):
        // fail the acquisition as if victimized, or widen the race window
        // before it.
        if !txn.is_irrevocable() {
            if chaos::should_inject(chaos::InjectionPoint::LockAcquire) {
                return Err(Abort::Deadlock);
            }
            if chaos::should_inject(chaos::InjectionPoint::LockDelay) {
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
        }

        match self.raw.acquire(me, Some(&txn.kill_handle())) {
            Ok(()) => {
                self.raw.holding_txn.store(txn.serial(), Ordering::Release);
                txfix_stm::obs::note_lock_acquired();
                txn.enlist(Arc::new(LockRelease { raw: self.raw.clone(), owner: me }));
                // Chaos: spurious revocation of a lock we just acquired.
                // The abort unwinds through LockRelease::abort, exercising
                // the same release-on-revocation path a real preemption
                // takes.
                if !txn.is_irrevocable() && chaos::should_inject(chaos::InjectionPoint::LockRevoke)
                {
                    return Err(Abort::Deadlock);
                }
                Ok(())
            }
            Err(AcquireError::SelfVictim) => Err(Abort::Deadlock),
            Err(AcquireError::Killed) => Err(Abort::Killed),
            Err(AcquireError::Deadlock(_)) => {
                // We are transactional and registered, so the detector
                // should have picked us; treat as victimization anyway.
                Err(Abort::Deadlock)
            }
        }
    }

    /// Acquire transactionally and run `f` on the protected data.
    ///
    /// The *lock* remains held until the transaction commits or aborts;
    /// only the borrow of the data is scoped to `f`. Can be called several
    /// times in one transaction.
    ///
    /// # Errors
    ///
    /// Propagates [`lock_tx`](TxMutex::lock_tx) errors.
    pub fn with_tx<R>(&self, txn: &mut Txn, f: impl FnOnce(&mut T) -> R) -> StmResult<R> {
        self.lock_tx(txn)?;
        // Safety: the raw lock is held by this thread until the transaction
        // finishes, so no other thread can observe `data`.
        Ok(unsafe { f(&mut *self.data.get()) })
    }

    /// Access the protected data on a thread that already holds the lock
    /// (via a guard or transactionally), without any abort points.
    ///
    /// Recipe 3 bodies use this for their mutation phase: acquire every
    /// lock first (each `lock_tx` an abort point), then mutate via
    /// `with_held` so a late advisory kill cannot re-execute non-isolated
    /// writes.
    ///
    /// # Panics
    ///
    /// Panics if the calling thread does not hold the lock.
    pub fn with_held<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        assert_eq!(
            self.raw.owner(),
            Some(thread_id::current()),
            "with_held on TxMutex \"{}\" requires the calling thread to hold it",
            self.raw.name()
        );
        // Safety: owner-exclusivity checked above.
        unsafe { f(&mut *self.data.get()) }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// Raw pointer to the protected data, for commit/abort hooks that run
    /// while the lock is still held by the finishing transaction.
    ///
    /// # Safety
    ///
    /// The pointer is only valid to dereference on a thread that currently
    /// owns the lock (transactionally or via a guard). This is the escape
    /// hatch the x-call layer uses inside transaction completion hooks,
    /// which the STM runtime runs before releasing enlisted locks.
    pub fn data_ptr(&self) -> *mut T {
        self.data.get()
    }
}

/// RAII guard for a non-transactional [`TxMutex`] acquisition.
pub struct TxMutexGuard<'a, T> {
    lock: &'a TxMutex<T>,
    owner: ThreadToken,
}

impl<T> Deref for TxMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: guard existence implies this thread owns the raw lock.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for TxMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: as above, plus &mut self.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for TxMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.raw.release(self.owner);
    }
}

impl<T: fmt::Debug> fmt::Debug for TxMutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("TxMutexGuard").field(&**self).finish()
    }
}

impl<'a, T> TxMutexGuard<'a, T> {
    pub(crate) fn owner(&self) -> ThreadToken {
        self.owner
    }

    pub(crate) fn mutex(&self) -> &'a TxMutex<T> {
        self.lock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txfix_stm::atomic;

    #[test]
    fn basic_lock_unlock() {
        let m = TxMutex::new("m", 5u32);
        {
            let mut g = m.lock().unwrap();
            *g += 1;
            assert!(m.is_locked());
        }
        assert!(!m.is_locked());
        assert_eq!(*m.lock().unwrap(), 6);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let m = Arc::new(TxMutex::new("m", ()));
        let g = m.lock().unwrap();
        let m2 = m.clone();
        std::thread::spawn(move || assert!(m2.try_lock().is_none())).join().unwrap();
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_excludes_concurrent_mutation() {
        let m = Arc::new(TxMutex::new("counter", 0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock().unwrap() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock().unwrap(), 8000);
    }

    #[test]
    fn lock_tx_holds_until_commit() {
        let m = Arc::new(TxMutex::new("m", 0u32));
        let m2 = m.clone();
        atomic(move |txn| {
            m2.with_tx(txn, |v| *v += 1)?;
            // Still held mid-transaction:
            assert!(m2.is_locked());
            m2.with_tx(txn, |v| *v += 1) // reentrant within the txn
        });
        assert!(!m.is_locked(), "lock not released at commit");
        assert_eq!(*m.lock().unwrap(), 2);
    }

    #[test]
    fn lock_tx_releases_on_abort() {
        let m = Arc::new(TxMutex::new("m", 0u32));
        let m2 = m.clone();
        let first = std::sync::atomic::AtomicBool::new(true);
        atomic(move |txn| {
            m2.with_tx(txn, |v| *v += 1)?;
            if first.swap(false, Ordering::SeqCst) {
                assert!(m2.is_locked());
                return txn.restart();
            }
            Ok(())
        });
        assert!(!m.is_locked());
        // Data mutations through with_tx are NOT rolled back (locks give
        // mutual exclusion, not isolation — paper Recipe 3 discussion), so
        // both attempts' increments are visible.
        assert_eq!(*m.lock().unwrap(), 2);
    }

    #[test]
    #[should_panic(expected = "acquired twice")]
    fn reacquire_panics() {
        let m = TxMutex::new("m", ());
        let _g = m.lock().unwrap();
        let _ = m.lock();
    }

    #[test]
    fn ab_ba_deadlock_is_detected() {
        use std::sync::Barrier;
        let a = Arc::new(TxMutex::new("A", ()));
        let b = Arc::new(TxMutex::new("B", ()));
        let barrier = Arc::new(Barrier::new(2));

        let detected = std::thread::scope(|s| {
            let (a1, b1, bar1) = (a.clone(), b.clone(), barrier.clone());
            let h1 = s.spawn(move || {
                let _ga = a1.lock().unwrap();
                bar1.wait();
                b1.lock().map(|_| ()).is_err()
            });
            let (a2, b2, bar2) = (a.clone(), b.clone(), barrier.clone());
            let h2 = s.spawn(move || {
                let _gb = b2.lock().unwrap();
                bar2.wait();
                a2.lock().map(|_| ()).is_err()
            });
            let r1 = h1.join().unwrap();
            let r2 = h2.join().unwrap();
            r1 || r2
        });
        assert!(detected, "AB-BA deadlock was not detected");
    }

    #[test]
    fn transactional_thread_is_preempted_to_resolve_deadlock() {
        use std::sync::Barrier;
        let a = Arc::new(TxMutex::new("A", 0u32));
        let b = Arc::new(TxMutex::new("B", 0u32));
        let barrier = Arc::new(Barrier::new(2));

        std::thread::scope(|s| {
            // Thread 1: plain locks, A then B.
            let (a1, b1, bar1) = (a.clone(), b.clone(), barrier.clone());
            s.spawn(move || {
                let _ga = a1.lock().unwrap();
                bar1.wait();
                let _gb = b1.lock().unwrap(); // must eventually succeed
            });
            // Thread 2: transactional, B then A — will be preempted.
            let (a2, b2, bar2) = (a.clone(), b.clone(), barrier.clone());
            s.spawn(move || {
                let mut synced = false;
                atomic(|txn| {
                    b2.lock_tx(txn)?;
                    if !synced {
                        synced = true;
                        bar2.wait();
                        // Give thread 1 time to block on B so the cycle forms.
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    a2.lock_tx(txn)
                });
            });
        });
        assert!(!a.is_locked());
        assert!(!b.is_locked());
    }
}
