//! Executable interpretation of summary IR: turn a [`ScenarioSummary`]
//! into a [`ScheduledRun`] the DFS explorer can drive.
//!
//! The static summaries (`txfix_static::ir`) are declarative models; the
//! explorer (`txfix_explore`) drives *hand-written* scheduled scenarios.
//! Fix inference needs to verify summaries it has just rewritten — for
//! which no hand-written reproduction exists — so this module closes the
//! gap by *executing* a summary against the real runtime primitives:
//!
//! - every shared location becomes a [`TVar<u64>`] starting at 0;
//! - every lock named in some region's `serialized_with` becomes a
//!   [`SerialMutex`] in one shared [`SerialDomain`] (Recipe 4); every
//!   other lock becomes a [`TxMutex`];
//! - condition variables become [`LockCondvar`]s, waits run the
//!   standard predicate loop (`while pred == 0 { wait }`) so a spent
//!   notification re-blocks the waiter — exactly the lost-wakeup shape;
//! - atomic regions run as real transactions: plain [`atomic`],
//!   [`preemptible`] when the region acquires locks (Recipe 3), or
//!   [`serial_atomic`] when serialized (Recipe 4); in-region waits
//!   become transactional [`guard`] retries.
//!
//! Values encode the bug oracles. A write after a read of the same
//! location stores `read + 1` (an intended increment); the check then
//! requires the final value to equal the number of committed increments,
//! so a lost update is observable. Writes to invariant-group members
//! reuse one target value per (path, read) so group members must agree
//! at the end, and adjacent in-path reads of two group members must see
//! equal values — a torn pair is observable. Deadlocks surface through
//! the runtime itself: a lock-order cycle panics with
//! [`DeadlockError`](txfix_txlock::DeadlockError), a lost wakeup blocks
//! every thread and the scheduler reports the deadlock.
//!
//! Modeling limits (documented in `DESIGN.md` §10): locations hold one
//! `u64`; a path should not write the same group member twice between
//! reads of that group; a lock that is both serialized against a region
//! and acquired *inside* another region, and a wait whose monitor is a
//! serialized lock, are rejected with a panic rather than silently
//! mis-modeled.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use txfix_core::recipe::{preemptible, PreemptOptions};
use txfix_corpus::{Outcome, ScheduledRun};
use txfix_static::{Op, ScenarioSummary};
use txfix_stm::{atomic, StmResult, TVar, Txn};
use txfix_tmsync::{guard, serial_atomic, SerialDomain, SerialMutex, SerialMutexGuard};
use txfix_txlock::{LockCondvar, TxMutex, TxMutexGuard};

/// Virtual-time bound for condvar waits; under the deterministic
/// scheduler a waiter parks until notified, so this never elapses.
const LONG_WAIT: Duration = Duration::from_secs(600);

/// The instantiated shared state for one run of a summary.
struct World {
    /// Shared locations (data accesses and wait predicates).
    locs: BTreeMap<String, TVar<u64>>,
    /// Plain revocable mutexes (everything not serialized against).
    plain: BTreeMap<String, Arc<TxMutex<()>>>,
    /// Locks some region is serialized against (Recipe 4).
    serial: BTreeMap<String, Arc<SerialMutex<()>>>,
    /// The one serialization domain shared by all serial locks.
    domain: Arc<SerialDomain>,
    /// Condition variables.
    cvs: BTreeMap<String, Arc<LockCondvar>>,
    /// Invariant groups, in declaration order.
    groups: Vec<Vec<String>>,
    /// Location -> index into `groups`.
    group_of: BTreeMap<String, usize>,
    /// Committed intended increments per location.
    counts: Mutex<BTreeMap<String, u64>>,
    /// Locations that ever received a blind (unread) write; their final
    /// value is schedule-dependent, so the increment check skips them.
    blind: Mutex<BTreeSet<String>>,
    /// Torn-read violations observed during execution.
    torn: Mutex<Vec<String>>,
}

impl World {
    fn loc(&self, name: &str) -> &TVar<u64> {
        self.locs.get(name).expect("location instantiated")
    }

    fn commit(&self, eff: Effects) {
        let mut counts = self.counts.lock().unwrap();
        for loc in eff.incs {
            *counts.entry(loc).or_insert(0) += 1;
        }
        drop(counts);
        self.blind.lock().unwrap().extend(eff.blind);
        self.torn.lock().unwrap().extend(eff.torn);
    }
}

/// Per-path interpreter state, cloned at every transaction attempt so
/// aborted attempts leave no residue.
#[derive(Clone, Default)]
struct PathState {
    /// Last value read (or increment-written) per location.
    regs: BTreeMap<String, u64>,
    /// Per group: value of the last member read (resets the target).
    group_base: BTreeMap<usize, u64>,
    /// Per group: the value every member write reuses until the next
    /// member read, and whether those writes count as increments.
    group_target: BTreeMap<usize, (u64, bool)>,
    /// Per group: the previous member read, for the adjacent-read
    /// torn-pair check. Cleared by self-writes and region boundaries.
    last_group_read: BTreeMap<usize, (String, u64)>,
}

/// Effects buffered during a transaction attempt, applied on commit.
#[derive(Clone, Default)]
struct Effects {
    incs: Vec<String>,
    blind: Vec<String>,
    torn: Vec<String>,
}

/// The value a blind (unread) write stores: distinct per path, so torn
/// invariant groups are distinguishable from consistent ones.
fn blind_const(path_idx: usize) -> u64 {
    (path_idx as u64 + 1) * 1_000_000
}

/// Record a read of `loc` observing `v`.
fn note_read(world: &World, st: &mut PathState, loc: &str, v: u64, eff: &mut Effects) {
    st.regs.insert(loc.to_string(), v);
    if let Some(&g) = world.group_of.get(loc) {
        if let Some((prev_loc, prev_v)) = st.last_group_read.get(&g) {
            if prev_loc != loc && *prev_v != v {
                eff.torn.push(format!("torn read: {prev_loc}={prev_v} then {loc}={v}"));
            }
        }
        st.last_group_read.insert(g, (loc.to_string(), v));
        st.group_base.insert(g, v);
        st.group_target.remove(&g);
    }
}

/// Compute (and record) the value a write of `loc` stores.
fn note_write(
    world: &World,
    st: &mut PathState,
    path_idx: usize,
    loc: &str,
    eff: &mut Effects,
) -> u64 {
    let (value, increment) = if let Some(&g) = world.group_of.get(loc) {
        st.last_group_read.remove(&g);
        if let Some(&(t, inc)) = st.group_target.get(&g) {
            (t, inc)
        } else if let Some(&base) = st.group_base.get(&g) {
            let t = base + 1;
            st.group_target.insert(g, (t, true));
            (t, true)
        } else {
            let t = blind_const(path_idx);
            st.group_target.insert(g, (t, false));
            (t, false)
        }
    } else if let Some(&prev) = st.regs.get(loc) {
        (prev + 1, true)
    } else {
        (blind_const(path_idx), false)
    };
    if increment {
        st.regs.insert(loc.to_string(), value);
        eff.incs.push(loc.to_string());
    } else {
        eff.blind.push(loc.to_string());
    }
    value
}

/// Index of the `AtomicEnd` matching the `AtomicBegin` at `begin`.
fn matching_end(ops: &[Op], begin: usize) -> usize {
    let mut depth = 0usize;
    for (i, op) in ops.iter().enumerate().skip(begin) {
        match op {
            Op::AtomicBegin { .. } => depth += 1,
            Op::AtomicEnd => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    unreachable!("validated summaries have balanced atomic regions")
}

/// Execute one op inside a transaction. Nested region boundaries are
/// flattened into the enclosing transaction by the caller.
fn exec_in_txn(
    world: &World,
    path_idx: usize,
    op: &Op,
    txn: &mut Txn,
    st: &mut PathState,
    eff: &mut Effects,
) -> StmResult<()> {
    match op {
        Op::Acquire { lock, .. } => {
            let Some(m) = world.plain.get(lock) else {
                panic!("lock {lock:?} is serialized against a region and cannot also be acquired inside one");
            };
            m.lock_tx(txn)?;
        }
        // Transactional locks are held to commit; the release is the
        // commit itself.
        Op::Release { .. } => {}
        Op::Read { loc, .. } => {
            let v = world.loc(loc).read(txn)?;
            note_read(world, st, loc, v, eff);
        }
        Op::Write { loc, .. } => {
            let v = note_write(world, st, path_idx, loc, eff);
            world.loc(loc).write(txn, v)?;
        }
        Op::Rmw { loc } => {
            let tv = world.loc(loc);
            let v = tv.read(txn)? + 1;
            tv.write(txn, v)?;
            st.regs.insert(loc.clone(), v);
            eff.incs.push(loc.clone());
        }
        Op::Wait { predicate, .. } => {
            // Transactional retry in place of the condvar sleep
            // (Recipe 3's wait replacement).
            let v = world.loc(predicate).read(txn)?;
            guard(txn, v != 0)?;
        }
        // A notify inside a region is a plain wakeup; the predicate
        // state it announces is published by the commit.
        Op::Notify { cv } => world.cvs[cv].notify_all(),
        Op::AtomicBegin { .. } | Op::AtomicEnd => {
            unreachable!("nested region boundaries are flattened by the caller")
        }
    }
    Ok(())
}

/// Execute one atomic region (`ops` excludes the enclosing begin/end) as
/// a real transaction of the flavor the summary asks for.
fn run_region(
    world: &World,
    path_idx: usize,
    ops: &[Op],
    serialized: &[String],
    st: &mut PathState,
) {
    // Flatten nested regions: one transaction covers the whole span.
    let flat: Vec<&Op> =
        ops.iter().filter(|op| !matches!(op, Op::AtomicBegin { .. } | Op::AtomicEnd)).collect();
    let acquires_locks = flat.iter().any(|op| matches!(op, Op::Acquire { .. }));
    let body = |txn: &mut Txn| -> StmResult<(PathState, Effects)> {
        let mut local = st.clone();
        local.last_group_read.clear();
        let mut eff = Effects::default();
        for op in &flat {
            exec_in_txn(world, path_idx, op, txn, &mut local, &mut eff)?;
        }
        local.last_group_read.clear();
        Ok((local, eff))
    };
    let (next, eff) = if !serialized.is_empty() {
        serial_atomic(&world.domain, body)
    } else if acquires_locks {
        preemptible(&PreemptOptions::default(), body).expect("preemptible region failed terminally")
    } else {
        atomic(body)
    };
    *st = next;
    world.commit(eff);
}

/// Execute one path of the summary against the world.
fn run_path(world: &World, path_idx: usize, ops: &[Op]) {
    let mut st = PathState::default();
    let mut plain_guards: BTreeMap<String, TxMutexGuard<'_, ()>> = BTreeMap::new();
    let mut serial_guards: BTreeMap<String, SerialMutexGuard<'_, ()>> = BTreeMap::new();
    let mut i = 0;
    while i < ops.len() {
        match &ops[i] {
            Op::AtomicBegin { serialized_with } => {
                let end = matching_end(ops, i);
                run_region(world, path_idx, &ops[i + 1..end], serialized_with, &mut st);
                i = end;
            }
            Op::Acquire { lock, .. } => {
                if let Some(m) = world.plain.get(lock) {
                    let g = m.lock().unwrap_or_else(|e| panic!("{e}"));
                    plain_guards.insert(lock.clone(), g);
                } else {
                    serial_guards.insert(lock.clone(), world.serial[lock].lock());
                }
            }
            Op::Release { lock } => {
                if plain_guards.remove(lock).is_none() {
                    serial_guards.remove(lock).expect("release of held lock");
                }
            }
            Op::Read { loc, .. } => {
                let v = world.loc(loc).load();
                let mut eff = Effects::default();
                note_read(world, &mut st, loc, v, &mut eff);
                world.commit(eff);
            }
            Op::Write { loc, .. } => {
                let mut eff = Effects::default();
                let v = note_write(world, &mut st, path_idx, loc, &mut eff);
                world.loc(loc).store(v);
                world.commit(eff);
            }
            Op::Rmw { loc } => {
                let tv = world.loc(loc);
                let v = atomic(|txn| {
                    let v = tv.read(txn)? + 1;
                    tv.write(txn, v)?;
                    Ok(v)
                });
                st.regs.insert(loc.clone(), v);
                world.commit(Effects { incs: vec![loc.clone()], ..Default::default() });
            }
            Op::Wait { cv, monitor, predicate } => {
                let cvar = &world.cvs[cv];
                let pred = world.loc(predicate);
                let mut g = plain_guards.remove(monitor).unwrap_or_else(|| {
                    panic!("wait on {cv:?}: monitor {monitor:?} must be a held plain lock")
                });
                // Standard monitor discipline: re-test the predicate
                // after every wakeup, so a notification that arrived
                // before the state it announces re-blocks the waiter.
                while pred.load() == 0 {
                    let (g2, _) = cvar.wait_timeout(g, LONG_WAIT).unwrap_or_else(|e| panic!("{e}"));
                    g = g2;
                }
                plain_guards.insert(monitor.clone(), g);
            }
            Op::Notify { cv } => world.cvs[cv].notify_all(),
            Op::AtomicEnd => unreachable!("validated summaries have balanced atomic regions"),
        }
        i += 1;
    }
}

/// Instantiate the world a summary runs against.
fn build_world(summary: &ScenarioSummary) -> Arc<World> {
    let mut loc_names: BTreeSet<String> = BTreeSet::new();
    let mut serial_names: BTreeSet<String> = BTreeSet::new();
    let mut lock_names: BTreeSet<String> = BTreeSet::new();
    let mut cv_names: BTreeSet<String> = BTreeSet::new();
    for p in &summary.paths {
        for op in &p.ops {
            if let Some(loc) = op.loc() {
                loc_names.insert(loc.to_string());
            }
            match op {
                Op::Acquire { lock, .. } => {
                    lock_names.insert(lock.clone());
                }
                Op::AtomicBegin { serialized_with } => {
                    serial_names.extend(serialized_with.iter().cloned());
                }
                Op::Wait { cv, monitor, predicate } => {
                    cv_names.insert(cv.clone());
                    lock_names.insert(monitor.clone());
                    loc_names.insert(predicate.clone());
                }
                Op::Notify { cv } => {
                    cv_names.insert(cv.clone());
                }
                _ => {}
            }
        }
    }
    let domain = SerialDomain::new();
    let mut group_of = BTreeMap::new();
    for (i, group) in summary.groups.iter().enumerate() {
        for loc in group {
            group_of.entry(loc.clone()).or_insert(i);
        }
    }
    Arc::new(World {
        locs: loc_names.into_iter().map(|n| (n, TVar::new(0u64))).collect(),
        plain: lock_names
            .iter()
            .filter(|n| !serial_names.contains(*n))
            .map(|n| (n.clone(), Arc::new(TxMutex::new(n, ()))))
            .collect(),
        serial: serial_names
            .iter()
            .map(|n| (n.clone(), Arc::new(SerialMutex::new(domain.clone(), ()))))
            .collect(),
        domain,
        cvs: cv_names.into_iter().map(|n| (n, Arc::new(LockCondvar::new()))).collect(),
        groups: summary.groups.clone(),
        group_of,
        counts: Mutex::new(BTreeMap::new()),
        blind: Mutex::new(BTreeSet::new()),
        torn: Mutex::new(Vec::new()),
    })
}

/// Build a [`ScheduledRun`] executing `summary`: one scheduler slot per
/// path, plus an invariant check encoding the lost-update, torn-group
/// and torn-read oracles.
///
/// # Panics
///
/// If the summary fails [`ScenarioSummary::validate`], or uses a shape
/// outside the model (see the module docs).
pub fn build_run(summary: &ScenarioSummary) -> ScheduledRun {
    summary.validate().expect("summary validates");
    let world = build_world(summary);
    let threads: Vec<Box<dyn FnOnce() + Send>> = summary
        .paths
        .iter()
        .enumerate()
        .map(|(idx, path)| {
            let world = world.clone();
            let ops = path.ops.clone();
            Box::new(move || run_path(&world, idx, &ops)) as Box<dyn FnOnce() + Send>
        })
        .collect();
    let check = Box::new(move || {
        let counts = world.counts.lock().unwrap();
        let blind = world.blind.lock().unwrap();
        for (loc, &n) in counts.iter() {
            if blind.contains(loc) {
                continue;
            }
            let v = world.loc(loc).load();
            if v != n {
                return Outcome::BugObserved(format!(
                    "lost update: {loc} = {v} after {n} increments"
                ));
            }
        }
        for group in &world.groups {
            let vals: Vec<u64> = group.iter().map(|l| world.loc(l).load()).collect();
            if vals.windows(2).any(|w| w[0] != w[1]) {
                let rendered: Vec<String> =
                    group.iter().zip(&vals).map(|(l, v)| format!("{l}={v}")).collect();
                return Outcome::BugObserved(format!("invariant torn: {}", rendered.join(", ")));
            }
        }
        if let Some(t) = world.torn.lock().unwrap().first() {
            return Outcome::BugObserved(t.clone());
        }
        Outcome::Correct
    });
    ScheduledRun { threads, check }
}
