//! The headline corpus test: every implemented bug manifests in its buggy
//! variant and is cured by both the developers' fix and the TM fix.

use txfix_corpus::{all_scenarios, Outcome, Variant};

#[test]
fn every_buggy_variant_exhibits_its_bug() {
    for s in all_scenarios() {
        let out = s.run(Variant::Buggy);
        assert!(
            out.is_bug(),
            "scenario {} did not exhibit its bug in the buggy variant: {out:?}",
            s.key()
        );
    }
}

#[test]
fn every_developer_fix_is_clean() {
    for s in all_scenarios() {
        let out = s.run(Variant::DevFix);
        assert_eq!(out, Outcome::Correct, "developer fix of {} misbehaved", s.key());
    }
}

#[test]
fn every_tm_fix_is_clean() {
    for s in all_scenarios() {
        let out = s.run(Variant::TmFix);
        assert_eq!(out, Outcome::Correct, "TM fix of {} misbehaved", s.key());
    }
}

#[test]
fn fixes_stay_clean_across_repeated_runs() {
    // Concurrency fixes must hold up across many executions, not one lucky
    // schedule.
    for s in all_scenarios() {
        for _ in 0..5 {
            assert_eq!(s.run(Variant::TmFix), Outcome::Correct, "TM fix of {}", s.key());
        }
    }
}

#[test]
fn buggy_variants_are_reproducible() {
    // The forced interleavings make the demonstrations deterministic; run
    // each three times to prove it is not a fluke of one schedule.
    for s in all_scenarios() {
        for round in 0..3 {
            let out = s.run(Variant::Buggy);
            assert!(out.is_bug(), "scenario {} round {round}: bug did not reproduce", s.key());
        }
    }
}
