//! Regenerate Table 2: difficulty of developers' vs. TM fixes.

fn main() {
    let bugs = txfix_corpus::all_bugs();
    print!("{}", txfix_core::table2(&bugs));
}
