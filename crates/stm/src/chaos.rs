//! Deterministic fault injection: the adversarial twin of [`obs`](crate::obs).
//!
//! The stress harness (PR 3) measures how the runtime behaves under load; it
//! cannot make the ugly paths *happen on demand*. A read-set validation
//! failure in the middle of write-back, a TxLock revoked while its holder is
//! blocked, an x-call whose underlying I/O fails after the compensation hook
//! is registered — these paths are exactly where Recipes 1–3 earn their
//! keep, and exactly where a scheduling accident is needed to reach them.
//! This module replaces the accident with a plan.
//!
//! A [`FaultPlan`] names a set of [injection points](InjectionPoint) — fixed
//! places the runtime, `txfix-txlock` and `txfix-xcall` ask
//! [`should_inject`] whether to fail — and gives each one a [`Trigger`]:
//! fire on the nth hit, every nth hit, or with a seeded per-mille
//! probability. Installing a plan arms the points process-wide; clearing it
//! disarms them.
//!
//! ## Determinism
//!
//! Probabilistic triggers do **not** consult a stateful RNG. Each point
//! keeps a hit counter, and the decision for hit `k` is a pure hash of
//! `(plan seed, point, k)` — so for a fixed seed, the *set of hit ordinals
//! that fail* at each point is fixed before the run starts. Thread
//! interleaving decides which thread draws ordinal `k`, not whether ordinal
//! `k` fails. This is what lets `txfix chaos --seed <s>` make bit-for-bit
//! reproducible reports: the report only contains facts that are functions
//! of the plan and the work, never of the interleaving.
//!
//! ## Cost when disabled
//!
//! Same contract as [`obs`](crate::obs) and `trace::sink`: with no plan
//! installed every [`should_inject`] call is a single relaxed load of one
//! `AtomicBool` and an immediate `false`. The `stm_overhead` criterion
//! bench covers this path.
//!
//! ## What injection means at each point
//!
//! Injected faults are always mapped onto failures the runtime already
//! claims to survive — a forced [`Abort`](crate::Abort) or a synthetic OS
//! error — never memory unsafety. Irrevocable transactions are exempt by
//! construction (the call sites skip injection once a transaction cannot
//! roll back, mirroring how kills are ignored). See DESIGN.md §8 for the
//! full inventory.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::obs;
use crate::stats;

/// A fixed place in the runtime where a fault can be injected.
///
/// The discriminant doubles as the index into the global arming tables, so
/// the list is append-only.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum InjectionPoint {
    /// Force an abort before a transaction attempt runs its body (models a
    /// conflict detected at begin).
    TxnBegin = 0,
    /// Force a read-set validation failure on a transactional read.
    TxnRead = 1,
    /// Force a validation-failure abort on entry to commit.
    TxnPreCommit = 2,
    /// Force an abort *inside* commit, after validation, with orecs locked
    /// (lazy) or data already written in place (eager).
    TxnWriteback = 3,
    /// Make a revocable-lock acquisition fail as if the caller had been
    /// chosen as a deadlock victim.
    LockAcquire = 4,
    /// Delay a revocable-lock acquisition (widens race windows).
    LockDelay = 5,
    /// Spuriously revoke a just-acquired lock: the caller aborts and the
    /// abort path must release the lock it already holds.
    LockRevoke = 6,
    /// Fail a transactional file operation with a synthetic I/O error.
    XcallFile = 7,
    /// Fail a transactional pipe/socket operation with a synthetic I/O
    /// error (`OsError::TimedOut` at the call site).
    XcallPipe = 8,
    /// Fail an async-I/O submission before it is enlisted.
    XcallAsync = 9,
}

/// Number of injection points (size of the arming tables).
pub const POINT_COUNT: usize = 10;

impl InjectionPoint {
    /// Every point, in discriminant order.
    pub const ALL: [InjectionPoint; POINT_COUNT] = [
        InjectionPoint::TxnBegin,
        InjectionPoint::TxnRead,
        InjectionPoint::TxnPreCommit,
        InjectionPoint::TxnWriteback,
        InjectionPoint::LockAcquire,
        InjectionPoint::LockDelay,
        InjectionPoint::LockRevoke,
        InjectionPoint::XcallFile,
        InjectionPoint::XcallPipe,
        InjectionPoint::XcallAsync,
    ];

    /// Stable machine-readable name (used in reports and CLI output).
    pub fn name(self) -> &'static str {
        match self {
            InjectionPoint::TxnBegin => "txn_begin",
            InjectionPoint::TxnRead => "txn_read",
            InjectionPoint::TxnPreCommit => "txn_pre_commit",
            InjectionPoint::TxnWriteback => "txn_writeback",
            InjectionPoint::LockAcquire => "lock_acquire",
            InjectionPoint::LockDelay => "lock_delay",
            InjectionPoint::LockRevoke => "lock_revoke",
            InjectionPoint::XcallFile => "xcall_file",
            InjectionPoint::XcallPipe => "xcall_pipe",
            InjectionPoint::XcallAsync => "xcall_async",
        }
    }

    /// Inverse of [`name`](InjectionPoint::name).
    pub fn parse(s: &str) -> Option<InjectionPoint> {
        InjectionPoint::ALL.into_iter().find(|p| p.name() == s)
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// When an armed point actually fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// Fire on hit `k` iff `hash(seed, point, k) % 1000 < per_mille` — a
    /// seeded coin whose outcomes are fixed per ordinal, not per thread.
    PerMille(u32),
    /// Fire on exactly the nth hit (1-based), once.
    Nth(u64),
    /// Fire on every nth hit (n ≥ 1).
    EveryNth(u64),
}

impl Trigger {
    /// Whether hit ordinal `hit` (1-based) fires under seed `seed` at point
    /// `point`. Pure: same arguments, same answer.
    pub fn fires(self, seed: u64, point: InjectionPoint, hit: u64) -> bool {
        match self {
            Trigger::PerMille(p) => {
                let h = splitmix64(seed ^ POINT_SALT[point.index()] ^ hit);
                (h % 1000) < u64::from(p.min(1000))
            }
            Trigger::Nth(n) => hit == n.max(1),
            Trigger::EveryNth(n) => hit.is_multiple_of(n.max(1)),
        }
    }

    fn encode(self) -> (u64, u64) {
        match self {
            Trigger::PerMille(p) => (1, u64::from(p)),
            Trigger::Nth(n) => (2, n),
            Trigger::EveryNth(n) => (3, n),
        }
    }
}

/// A seeded, deterministic schedule of faults: one optional [`Trigger`] per
/// [`InjectionPoint`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    rules: [Option<Trigger>; POINT_COUNT],
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(0)
    }
}

impl FaultPlan {
    /// An empty plan (no points armed) under `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, rules: [None; POINT_COUNT] }
    }

    /// Arm `point` with `trigger` (builder style).
    pub fn with(mut self, point: InjectionPoint, trigger: Trigger) -> FaultPlan {
        self.rules[point.index()] = Some(trigger);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The trigger armed at `point`, if any.
    pub fn rule(&self, point: InjectionPoint) -> Option<Trigger> {
        self.rules[point.index()]
    }

    /// True when no point is armed.
    pub fn is_empty(&self) -> bool {
        self.rules.iter().all(|r| r.is_none())
    }
}

// ---- the arming tables ----------------------------------------------------
//
// A plan is installed by flattening it into per-point atomics, so the hot
// path never takes a lock: kind 0 = disarmed, 1/2/3 = PerMille/Nth/EveryNth
// with the parameter in VALUES. ACTIVE is the one relaxed load every
// disabled call pays.

static ACTIVE: AtomicBool = AtomicBool::new(false);
static SEED: AtomicU64 = AtomicU64::new(0);

#[allow(clippy::declare_interior_mutable_const)] // const used only as array initializer
const ZERO: AtomicU64 = AtomicU64::new(0);

static KINDS: [AtomicU64; POINT_COUNT] = [ZERO; POINT_COUNT];
static VALUES: [AtomicU64; POINT_COUNT] = [ZERO; POINT_COUNT];
static HITS: [AtomicU64; POINT_COUNT] = [ZERO; POINT_COUNT];
static INJECTED: [AtomicU64; POINT_COUNT] = [ZERO; POINT_COUNT];

/// Per-point salt so the same hit ordinal draws independent coins at
/// different points under one seed.
static POINT_SALT: [u64; POINT_COUNT] = [
    0x9E37_79B9_7F4A_7C15,
    0xBF58_476D_1CE4_E5B9,
    0x94D0_49BB_1331_11EB,
    0xD6E8_FEB8_6659_FD93,
    0xA076_1D64_78BD_642F,
    0xE703_7ED1_A0B4_28DB,
    0x8EBC_6AF0_9C88_C6E3,
    0x5899_65CC_7537_4CC3,
    0x1D8E_4E27_C47D_124F,
    0xEB44_ACCA_B455_D165,
];

/// SplitMix64 finalizer: the deterministic coin behind
/// [`Trigger::PerMille`] and the recommended way to derive per-worker seeds
/// from a run seed.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Install `plan` process-wide, zeroing the hit and injection counters.
/// Installing an empty plan still arms the layer (hits are counted); use
/// [`clear`] to disarm.
pub fn install(plan: &FaultPlan) {
    ACTIVE.store(false, Ordering::SeqCst);
    SEED.store(plan.seed, Ordering::SeqCst);
    for i in 0..POINT_COUNT {
        let (kind, value) = match plan.rules[i] {
            Some(t) => t.encode(),
            None => (0, 0),
        };
        KINDS[i].store(kind, Ordering::SeqCst);
        VALUES[i].store(value, Ordering::SeqCst);
        HITS[i].store(0, Ordering::SeqCst);
        INJECTED[i].store(0, Ordering::SeqCst);
    }
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Disarm every injection point. Hit/injection counters are kept until the
/// next [`install`] so they can still be inspected after a run.
pub fn clear() {
    ACTIVE.store(false, Ordering::SeqCst);
    for k in &KINDS {
        k.store(0, Ordering::SeqCst);
    }
}

/// Whether a plan is currently installed.
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Install `plan` for the life of the returned guard, clearing on drop.
/// Test-friendly: a panic between install and clear still disarms.
pub fn scoped(plan: &FaultPlan) -> ChaosGuard {
    install(plan);
    ChaosGuard { _priv: () }
}

/// Guard returned by [`scoped`]; disarms the chaos layer on drop.
pub struct ChaosGuard {
    _priv: (),
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        clear();
    }
}

/// Ask whether the fault armed at `point` fires now. Counts a hit against
/// the point either way (when armed), bumps the injected counters and the
/// current obs site's `faults_injected` when it fires. With no plan
/// installed this is one relaxed load and `false`.
#[inline]
pub fn should_inject(point: InjectionPoint) -> bool {
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    should_inject_slow(point)
}

#[cold]
fn should_inject_slow(point: InjectionPoint) -> bool {
    let i = point.index();
    let kind = KINDS[i].load(Ordering::Relaxed);
    if kind == 0 {
        return false;
    }
    // An armed injection point is a schedulable step: under the
    // deterministic scheduler, *where* a fault lands relative to other
    // threads' operations is itself a schedule dimension.
    crate::sched::yield_point(crate::sched::SyncOp::ChaosPoint(i as u32));
    let value = VALUES[i].load(Ordering::Relaxed);
    let trigger = match kind {
        1 => Trigger::PerMille(value as u32),
        2 => Trigger::Nth(value),
        3 => Trigger::EveryNth(value),
        _ => return false,
    };
    let hit = HITS[i].fetch_add(1, Ordering::Relaxed) + 1;
    if !trigger.fires(SEED.load(Ordering::Relaxed), point, hit) {
        return false;
    }
    INJECTED[i].fetch_add(1, Ordering::Relaxed);
    stats::bump_chaos_injected();
    obs::note_fault_injected();
    true
}

/// Hit and injection counts for one point since the last [`install`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PointStats {
    /// The point.
    pub point: InjectionPoint,
    /// Times the armed point was consulted.
    pub hits: u64,
    /// Times it fired.
    pub injected: u64,
}

/// Counters for every point, in discriminant order.
pub fn point_stats() -> Vec<PointStats> {
    InjectionPoint::ALL
        .into_iter()
        .map(|point| PointStats {
            point,
            hits: HITS[point.index()].load(Ordering::Relaxed),
            injected: INJECTED[point.index()].load(Ordering::Relaxed),
        })
        .collect()
}

/// Total faults injected across all points since the last [`install`].
pub fn injected_total() -> u64 {
    INJECTED.iter().map(|c| c.load(Ordering::Relaxed)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Pure trigger/plan logic only: tests that *install* plans live in the
    // dedicated integration binaries (tests/chaos.rs and friends), because
    // the arming tables are process-global and unit tests run in parallel.

    #[test]
    fn point_names_round_trip() {
        for p in InjectionPoint::ALL {
            assert_eq!(InjectionPoint::parse(p.name()), Some(p));
        }
        assert_eq!(InjectionPoint::parse("nope"), None);
        assert_eq!(InjectionPoint::ALL.len(), POINT_COUNT);
    }

    #[test]
    fn nth_fires_exactly_once() {
        let t = Trigger::Nth(3);
        let fired: Vec<u64> =
            (1..=10).filter(|&k| t.fires(7, InjectionPoint::TxnBegin, k)).collect();
        assert_eq!(fired, vec![3]);
    }

    #[test]
    fn every_nth_fires_periodically() {
        let t = Trigger::EveryNth(4);
        let fired: Vec<u64> =
            (1..=12).filter(|&k| t.fires(7, InjectionPoint::TxnRead, k)).collect();
        assert_eq!(fired, vec![4, 8, 12]);
        // n = 0 is clamped to 1, not a division by zero.
        assert!(Trigger::EveryNth(0).fires(7, InjectionPoint::TxnRead, 1));
    }

    #[test]
    fn per_mille_is_a_pure_function_of_seed_point_and_hit() {
        let t = Trigger::PerMille(300);
        let draw =
            |seed| (1u64..=200).filter(|&k| t.fires(seed, InjectionPoint::TxnPreCommit, k)).count();
        let a: Vec<bool> =
            (1u64..=200).map(|k| t.fires(42, InjectionPoint::TxnPreCommit, k)).collect();
        let b: Vec<bool> =
            (1u64..=200).map(|k| t.fires(42, InjectionPoint::TxnPreCommit, k)).collect();
        assert_eq!(a, b, "same seed, same outcome sequence");
        // Roughly 30% of 200 draws should fire; allow a wide band.
        let n = draw(42);
        assert!((20..=100).contains(&n), "got {n} fires out of 200 at 30%");
        // Different points draw independent coins under one seed.
        let other: Vec<bool> =
            (1u64..=200).map(|k| t.fires(42, InjectionPoint::TxnWriteback, k)).collect();
        assert_ne!(a, other);
    }

    #[test]
    fn per_mille_extremes() {
        assert!(!Trigger::PerMille(0).fires(9, InjectionPoint::XcallFile, 1));
        for k in 1..=50 {
            assert!(Trigger::PerMille(1000).fires(9, InjectionPoint::XcallFile, k));
            // Values above 1000 clamp to "always".
            assert!(Trigger::PerMille(5000).fires(9, InjectionPoint::XcallFile, k));
        }
    }

    #[test]
    fn plan_builder_arms_points() {
        let plan = FaultPlan::new(11)
            .with(InjectionPoint::TxnBegin, Trigger::Nth(1))
            .with(InjectionPoint::XcallPipe, Trigger::PerMille(50));
        assert_eq!(plan.seed(), 11);
        assert!(!plan.is_empty());
        assert_eq!(plan.rule(InjectionPoint::TxnBegin), Some(Trigger::Nth(1)));
        assert_eq!(plan.rule(InjectionPoint::XcallPipe), Some(Trigger::PerMille(50)));
        assert_eq!(plan.rule(InjectionPoint::TxnRead), None);
        assert!(FaultPlan::new(0).is_empty());
    }

    #[test]
    fn splitmix64_is_stable() {
        // Reference values pin the hash so reports stay comparable across
        // builds; changing them is a report-format break.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }
}
