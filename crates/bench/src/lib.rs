//! # txfix-bench: the evaluation harness
//!
//! One runner per paper artifact (DESIGN.md §4). The `table1`–`table4`
//! binaries print the paper's tables from the corpus and the case-study
//! comparisons; `experiments` runs everything and prints paper-reported
//! vs. measured values; the criterion benches under `benches/` measure the
//! same comparisons with statistical rigor plus the three ablations; the
//! [`stress`] module sustains open-ended load against each fix variant and
//! reports throughput, abort rate and latency percentiles (`txfix
//! stress`); the [`chaos`] module sweeps seeded fault-injection schedules
//! over the corpus scenarios and asserts their invariants (`txfix chaos`);
//! the [`workload`] module is the open-loop generator (seeded Zipfian
//! keys, mixed op ratios, bursty phases, a simulated-user session model)
//! the [`kv`] module drives through the sharded transactional KV store
//! under the deterministic scheduler (`txfix kv`).

#![warn(missing_docs)]

pub mod cases;
pub mod chaos;
pub mod kv;
pub mod pool;
pub mod stress;
pub mod workload;

pub use cases::{
    apache_i_comparison, apache_ii_comparison, mozilla_i_comparison, mysql_i_comparison,
    CaseComparison, Measurement, Scale,
};
pub use chaos::{chaos_report, plan_for, run_chaos, ChaosConfig, ChaosRun};
pub use stress::{run_stress, stress_report, StressConfig, StressRun, SCENARIOS};
