//! Atomic/lock serialization (the Recipe 4 runtime).
//!
//! Paper §5.1: "We augment both the STM's atomic regions and POSIX mutex
//! locks with a special global reader/writer lock that provides mutual
//! exclusion between atomic regions and lock-based critical sections.
//! Mutex locks acquire the global lock in shared mode, while atomic
//! regions acquire it exclusively." The paper notes this simple scheme
//! costs concurrency (their MySQL-I fix runs at ~50%); scalable designs
//! like cxspinlocks exist but this reproduces the evaluated artifact.

use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use txfix_stm::{sched, trace};
use txfix_stm::{StmResult, Txn, TxnBuilder, TxnError};

/// A serialization domain: the shared reader/writer lock coupling one set
/// of mutexes with the atomic regions serialized against them.
pub struct SerialDomain {
    rw: RwLock<()>,
    /// Thread currently holding the domain exclusively (inside
    /// [`serial_atomic`]), or 0. Lets that thread's own [`SerialMutex`]
    /// acquisitions skip the shared-mode lock instead of self-deadlocking —
    /// the serialized region already excludes every lock critical section.
    exclusive_holder: AtomicU64,
    trace_id: u64,
}

impl fmt::Debug for SerialDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SerialDomain")
            .field("exclusive_holder", &self.exclusive_holder.load(Ordering::Relaxed))
            .finish()
    }
}

impl SerialDomain {
    /// Create a domain.
    pub fn new() -> Arc<SerialDomain> {
        Arc::new(SerialDomain {
            rw: RwLock::new(()),
            exclusive_holder: AtomicU64::new(0),
            trace_id: trace::next_object_id(),
        })
    }

    fn held_exclusively_by_me(&self) -> bool {
        self.exclusive_holder.load(Ordering::Acquire) == txfix_txlock::current_thread().as_u64()
    }
}

/// A mutex whose critical sections are serializable against the domain's
/// atomic regions: locking takes the domain lock in *shared* mode, so
/// ordinary lock-based critical sections still run concurrently with each
/// other, but never overlap a [`serial_atomic`] region.
pub struct SerialMutex<T> {
    domain: Arc<SerialDomain>,
    inner: Mutex<T>,
    trace_id: u64,
}

impl<T: fmt::Debug> fmt::Debug for SerialMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SerialMutex").field("inner", &self.inner).finish()
    }
}

impl<T> SerialMutex<T> {
    /// Create a mutex bound to `domain`.
    pub fn new(domain: Arc<SerialDomain>, value: T) -> SerialMutex<T> {
        SerialMutex { domain, inner: Mutex::new(value), trace_id: trace::next_object_id() }
    }

    /// Lock the mutex (and the domain in shared mode; inside a
    /// [`serial_atomic`] of the same domain the shared acquisition is
    /// skipped — the region already holds the domain exclusively).
    pub fn lock(&self) -> SerialMutexGuard<'_, T> {
        // Under the deterministic scheduler the whole critical section is
        // one scheduler step: announce it, then suppress yields until the
        // guard drops. A controlled thread therefore never parks while
        // holding the domain's shared lock, so the OS acquisitions below
        // can never block on another controlled thread.
        sched::yield_point(sched::SyncOp::SerialSection(self.trace_id));
        let atomic = sched::atomic_section();
        if trace::is_enabled() {
            trace::emit(trace::EventKind::LockAttempt {
                lock: self.trace_id,
                name: self.trace_name(),
                preemptible: false,
            });
        }
        let shared =
            if self.domain.held_exclusively_by_me() { None } else { Some(self.domain.rw.read()) };
        let guard = self.inner.lock();
        if trace::is_enabled() {
            trace::emit(trace::EventKind::LockAcquired {
                lock: self.trace_id,
                name: self.trace_name(),
            });
        }
        SerialMutexGuard { _shared: shared, guard, trace_id: self.trace_id, _atomic: atomic }
    }

    fn trace_name(&self) -> String {
        format!("serial-mutex#{}", self.trace_id & !(1 << 63))
    }
}

/// Guard for a [`SerialMutex`] critical section.
pub struct SerialMutexGuard<'a, T> {
    _shared: Option<RwLockReadGuard<'a, ()>>,
    guard: MutexGuard<'a, T>,
    trace_id: u64,
    _atomic: sched::AtomicSection,
}

impl<T> Drop for SerialMutexGuard<'_, T> {
    fn drop(&mut self) {
        trace::emit(trace::EventKind::LockReleased { lock: self.trace_id });
    }
}

impl<T> Deref for SerialMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for SerialMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: fmt::Debug> fmt::Debug for SerialMutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SerialMutexGuard").field(&**self).finish()
    }
}

/// Execute `body` as an atomic region **serialized against every lock
/// critical section in `domain`** — Recipe 4's "atomic/lock serializable
/// section". The domain lock is held exclusively for the whole region, so
/// the region cannot interleave with any [`SerialMutex`] critical section,
/// whether or not they touch the same data.
pub fn serial_atomic<T>(
    domain: &Arc<SerialDomain>,
    body: impl FnMut(&mut Txn) -> StmResult<T>,
) -> T {
    serial_atomic_with(domain, &Txn::build(), body)
        .expect("default serial atomic region cannot fail terminally")
}

/// [`serial_atomic`] with an explicitly configured [`TxnBuilder`].
///
/// # Errors
///
/// Same terminal errors as [`TxnBuilder::try_run`].
pub fn serial_atomic_with<T>(
    domain: &Arc<SerialDomain>,
    txn: &TxnBuilder,
    body: impl FnMut(&mut Txn) -> StmResult<T>,
) -> Result<T, TxnError> {
    struct ResetHolder<'a>(&'a AtomicU64);
    impl Drop for ResetHolder<'_> {
        fn drop(&mut self) {
            self.0.store(0, Ordering::Release);
        }
    }

    // One scheduler step for the whole region (see `SerialMutex::lock`):
    // the region's own yields (txn begin/read/write/commit) are suppressed,
    // matching its semantics — serialized against every critical section,
    // nothing can interleave with it anyway.
    sched::yield_point(sched::SyncOp::SerialSection(domain.trace_id));
    let _atomic = sched::atomic_section();
    let _exclusive = domain.rw.write();
    domain.exclusive_holder.store(txfix_txlock::current_thread().as_u64(), Ordering::Release);
    let _reset = ResetHolder(&domain.exclusive_holder);
    txn.try_run(body).map(|(v, _)| v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::time::Duration;
    use txfix_stm::TVar;

    #[test]
    fn lock_sections_run_concurrently_with_each_other() {
        let domain = SerialDomain::new();
        let a = Arc::new(SerialMutex::new(domain.clone(), 0u32));
        let b = Arc::new(SerialMutex::new(domain.clone(), 0u32));
        // Hold a; b must still be lockable (shared domain mode).
        let _ga = a.lock();
        let b2 = b.clone();
        let ok = std::thread::spawn(move || {
            let _gb = b2.lock();
            true
        })
        .join()
        .unwrap();
        assert!(ok);
    }

    #[test]
    fn serial_atomic_excludes_lock_sections() {
        let domain = SerialDomain::new();
        let m = Arc::new(SerialMutex::new(domain.clone(), 0u32));
        let in_atomic = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let locked = Arc::new(AtomicBool::new(false));

        std::thread::scope(|s| {
            let (d, ia, rel) = (domain.clone(), in_atomic.clone(), release.clone());
            s.spawn(move || {
                serial_atomic(&d, |_txn| {
                    ia.store(true, Ordering::SeqCst);
                    while !rel.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                    Ok(())
                });
            });
            while !in_atomic.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            let (m2, l2) = (m.clone(), locked.clone());
            s.spawn(move || {
                let _g = m2.lock();
                l2.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(30));
            assert!(
                !locked.load(Ordering::SeqCst),
                "lock section overlapped a serial atomic region"
            );
            release.store(true, Ordering::SeqCst);
        });
        assert!(locked.load(Ordering::SeqCst));
    }

    #[test]
    fn serial_mutex_is_reentrant_inside_its_own_serial_atomic() {
        // Recipe 4 bodies routinely lock domain mutexes for the data they
        // touch; taking the domain's shared lock again would self-deadlock,
        // so the exclusive holder skips it.
        let domain = SerialDomain::new();
        let m = Arc::new(SerialMutex::new(domain.clone(), 7u32));
        let out = serial_atomic(&domain, |_txn| {
            let mut g = m.lock();
            *g += 1;
            Ok(*g)
        });
        assert_eq!(out, 8);
        // And the domain is fully released afterwards: a plain lock works.
        assert_eq!(*m.lock(), 8);
    }

    #[test]
    fn exclusive_holder_resets_even_if_the_body_panics() {
        let domain = SerialDomain::new();
        let m = Arc::new(SerialMutex::new(domain.clone(), 0u32));
        let d = domain.clone();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serial_atomic(&d, |_txn| -> txfix_stm::StmResult<()> { panic!("boom") })
        }));
        assert!(r.is_err());
        // A later plain lock must take the shared path and succeed.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn mixed_lock_and_atomic_increments_are_exact() {
        let domain = SerialDomain::new();
        // The same logical counter reachable both ways: a TVar updated by
        // atomic regions, mirrored into lock-protected state.
        let tv = TVar::new(0u64);
        let locked_adds = Arc::new(SerialMutex::new(domain.clone(), 0u64));
        let total = Arc::new(AtomicU64::new(0));

        std::thread::scope(|s| {
            for _ in 0..2 {
                let (d, tv) = (domain.clone(), tv.clone());
                s.spawn(move || {
                    for _ in 0..200 {
                        serial_atomic(&d, |txn| tv.modify(txn, |x| x + 1));
                    }
                });
            }
            for _ in 0..2 {
                let (m, total) = (locked_adds.clone(), total.clone());
                s.spawn(move || {
                    for _ in 0..200 {
                        let mut g = m.lock();
                        *g += 1;
                        total.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(tv.load(), 400);
        assert_eq!(*locked_adds.lock(), 400);
    }
}
