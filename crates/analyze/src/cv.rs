//! Wait/notify discipline checks over the recorded trace.
//!
//! The lock-graph passes are structurally blind to two condition-variable
//! bugs the static analyzer models:
//!
//! - **Wait cycles**: a thread waits on a condvar while still holding a
//!   lock that every potential notifier must acquire first — no
//!   lock-order inversion ever forms, yet the notifier blocks behind the
//!   waiter forever.
//! - **Lost wakeups**: a thread notifies *before* publishing the state
//!   the wait predicate reads, so a waiter can test a stale predicate
//!   and sleep through the only wakeup.
//!
//! Both rules work on the name-carrying [`CvWait`]/[`CvNotify`] events;
//! unnamed condvars (internal plumbing, the transactional condvar's
//! commit-before-wait protocol) are skipped, since a hazard needs the
//! shared vocabulary to be matched against static findings.
//!
//! [`CvWait`]: EventKind::CvWait
//! [`CvNotify`]: EventKind::CvNotify

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use txfix_core::Hazard;
use txfix_stm::trace::{EventKind, TraceEvent};

/// Run both wait/notify rules and return the hazards, deduplicated and
/// sorted by their subjects so the output is independent of thread
/// interleaving.
pub fn cv_hazards(events: &[TraceEvent]) -> Vec<Hazard> {
    let mut out: Vec<Hazard> = wait_cycles(events);
    out.extend(lost_wakeups(events));
    out.sort_by_key(|h| h.subjects());
    out.dedup();
    out
}

/// A thread waits on a condvar while holding locks beyond the monitor.
///
/// The waiter's lockset is tracked through `LockAcquired`/`LockReleased`;
/// the monitor is the first lock the thread releases after the wait
/// event (the wait protocol emits `CvWait` *before* dropping the guard,
/// so that release is always the monitor). Every other non-preemptibly
/// held lock `L` is a hazard if some other thread both notifies the
/// condvar and attempts `L` non-preemptibly — the shape of the
/// Apache-I listener/worker deadlock. Preemptible (revocable) holds are
/// exempt: revocation breaks the cycle, which is exactly how Recipe 3
/// fixes this bug class.
fn wait_cycles(events: &[TraceEvent]) -> Vec<Hazard> {
    // Per thread: the condvars it notifies and the locks it attempts
    // non-preemptibly.
    let mut notifies: HashMap<u64, HashSet<u64>> = HashMap::new();
    let mut attempts: HashMap<u64, HashSet<u64>> = HashMap::new();
    let mut lock_names: HashMap<u64, String> = HashMap::new();
    for e in events {
        match &e.kind {
            EventKind::CvNotify { cv, name } if !name.is_empty() => {
                notifies.entry(e.thread).or_default().insert(*cv);
            }
            EventKind::LockAttempt { lock, name, preemptible: false } => {
                attempts.entry(e.thread).or_default().insert(*lock);
                lock_names.insert(*lock, name.clone());
            }
            EventKind::LockAcquired { lock, name } => {
                lock_names.insert(*lock, name.clone());
            }
            _ => {}
        }
    }

    // Per thread: currently held non-preemptible locks (in acquisition
    // order) and the open wait, if any, with its held-lock snapshot.
    let mut held: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut preemptible_attempt: HashMap<u64, HashSet<u64>> = HashMap::new();
    let mut open_wait: HashMap<u64, (u64, String, Vec<u64>)> = HashMap::new();
    let mut hazards: BTreeSet<(String, String)> = BTreeSet::new();
    for e in events {
        match &e.kind {
            EventKind::LockAttempt { lock, preemptible: true, .. } => {
                preemptible_attempt.entry(e.thread).or_default().insert(*lock);
            }
            EventKind::LockAttempt { lock, preemptible: false, .. } => {
                preemptible_attempt.entry(e.thread).or_default().remove(lock);
            }
            EventKind::LockAcquired { lock, .. } => {
                let revocable =
                    preemptible_attempt.get(&e.thread).is_some_and(|locks| locks.contains(lock));
                if !revocable {
                    held.entry(e.thread).or_default().push(*lock);
                }
            }
            EventKind::LockReleased { lock } => {
                if let Some((cv, cv_name, snapshot)) = open_wait.remove(&e.thread) {
                    for l in snapshot.iter().filter(|l| *l != lock) {
                        let blocked_notifier = notifies.iter().any(|(t, cvs)| {
                            *t != e.thread
                                && cvs.contains(&cv)
                                && attempts.get(t).is_some_and(|a| a.contains(l))
                        });
                        if blocked_notifier {
                            if let Some(name) = lock_names.get(l) {
                                hazards.insert((cv_name.clone(), name.clone()));
                            }
                        }
                    }
                }
                if let Some(stack) = held.get_mut(&e.thread) {
                    if let Some(pos) = stack.iter().rposition(|l| l == lock) {
                        stack.remove(pos);
                    }
                }
            }
            EventKind::CvWait { cv, name } if !name.is_empty() => {
                let snapshot = held.get(&e.thread).cloned().unwrap_or_default();
                open_wait.insert(e.thread, (*cv, name.clone(), snapshot));
            }
            _ => {}
        }
    }
    hazards.into_iter().map(|(cv, lock)| Hazard::WaitCycle { cv, lock }).collect()
}

/// A thread notifies before publishing the state the waiter tests.
///
/// A notify with **no lock activity at all** beforehand (since the
/// thread's previous notify of the same condvar) cannot have published
/// anything under the monitor yet; if the thread then goes on to acquire
/// a lock — the belated publish — a waiter scheduled in between saw a
/// stale predicate and slept through the signal. The hazard's location
/// is that first subsequently-acquired lock: the monitor guarding the
/// state that should have been updated first.
fn lost_wakeups(events: &[TraceEvent]) -> Vec<Hazard> {
    // Per thread: whether any lock activity happened since the previous
    // notify of each condvar (keyed per (thread, cv)).
    let mut lock_active: HashMap<u64, bool> = HashMap::new();
    // Pending premature notifies awaiting the thread's next acquisition.
    let mut pending: HashMap<u64, String> = HashMap::new();
    let mut hazards: BTreeMap<(String, String), ()> = BTreeMap::new();
    for e in events {
        match &e.kind {
            EventKind::LockAcquired { name, .. } => {
                if let Some(cv_name) = pending.remove(&e.thread) {
                    hazards.insert((cv_name, name.clone()), ());
                }
                lock_active.insert(e.thread, true);
            }
            EventKind::LockAttempt { .. } | EventKind::LockReleased { .. } => {
                lock_active.insert(e.thread, true);
            }
            EventKind::CvNotify { name, .. } if !name.is_empty() => {
                if !lock_active.get(&e.thread).copied().unwrap_or(false) {
                    pending.insert(e.thread, name.clone());
                }
                lock_active.insert(e.thread, false);
            }
            _ => {}
        }
    }
    hazards.into_keys().map(|(cv, loc)| Hazard::LostWakeup { cv, loc }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(thread: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { thread, kind }
    }
    fn attempt(t: u64, lock: u64, name: &str, preemptible: bool) -> TraceEvent {
        ev(t, EventKind::LockAttempt { lock, name: name.into(), preemptible })
    }
    fn acquired(t: u64, lock: u64, name: &str) -> TraceEvent {
        ev(t, EventKind::LockAcquired { lock, name: name.into() })
    }
    fn released(t: u64, lock: u64) -> TraceEvent {
        ev(t, EventKind::LockReleased { lock })
    }
    fn wait(t: u64, cv: u64, name: &str) -> TraceEvent {
        ev(t, EventKind::CvWait { cv, name: name.into() })
    }
    fn notify(t: u64, cv: u64, name: &str) -> TraceEvent {
        ev(t, EventKind::CvNotify { cv, name: name.into() })
    }

    #[test]
    fn waiting_with_an_extra_lock_a_notifier_needs_is_a_wait_cycle() {
        // Thread 1: lock outer, lock monitor, wait (monitor dropped).
        // Thread 2: notifies, and elsewhere attempts the outer lock.
        let events = [
            acquired(1, 10, "outer"),
            acquired(1, 11, "monitor"),
            wait(1, 20, "cv"),
            released(1, 11), // the wait protocol's guard drop
            attempt(2, 10, "outer", false),
            notify(2, 20, "cv"),
        ];
        assert_eq!(
            cv_hazards(&events),
            vec![Hazard::WaitCycle { cv: "cv".into(), lock: "outer".into() }]
        );
    }

    #[test]
    fn monitor_only_waits_and_revocable_holds_are_clean() {
        // Holding only the monitor across the wait: no cycle.
        let monitor_only = [
            acquired(1, 11, "monitor"),
            wait(1, 20, "cv"),
            released(1, 11),
            attempt(2, 11, "monitor", false),
            notify(2, 20, "cv"),
        ];
        assert!(cv_hazards(&monitor_only).is_empty());

        // The outer lock held revocably (preemptible attempt): Recipe 3's
        // escape hatch, not a cycle.
        let revocable = [
            attempt(1, 10, "outer", true),
            acquired(1, 10, "outer"),
            acquired(1, 11, "monitor"),
            wait(1, 20, "cv"),
            released(1, 11),
            attempt(2, 10, "outer", false),
            notify(2, 20, "cv"),
        ];
        assert!(cv_hazards(&revocable).is_empty());
    }

    #[test]
    fn notify_before_any_publish_is_a_lost_wakeup() {
        let events = [
            notify(2, 20, "cv"),
            attempt(2, 11, "monitor", false),
            acquired(2, 11, "monitor"),
            released(2, 11),
        ];
        assert_eq!(
            cv_hazards(&events),
            vec![Hazard::LostWakeup { cv: "cv".into(), loc: "monitor".into() }]
        );
    }

    #[test]
    fn publish_then_notify_is_clean() {
        let events = [
            acquired(2, 11, "monitor"),
            released(2, 11),
            notify(2, 20, "cv"),
            acquired(2, 11, "monitor"),
            released(2, 11),
        ];
        assert!(cv_hazards(&events).is_empty());
    }

    #[test]
    fn unnamed_condvars_are_skipped() {
        let events = [
            acquired(1, 10, "outer"),
            acquired(1, 11, "monitor"),
            wait(1, 20, ""),
            released(1, 11),
            attempt(2, 10, "outer", false),
            notify(2, 20, ""),
        ];
        assert!(cv_hazards(&events).is_empty());
    }
}
