//! Findings and machine-readable reports.
//!
//! The workspace has no serde (the build environment vendors only a
//! handful of stand-in crates), so the JSON encoding here goes through
//! [`txfix_core::json`]: [`ToJson`] builds a stable object layout and
//! [`Report::from_json`] parses it back. Round-tripping is covered by
//! tests.

use txfix_core::json::{get, Json, ToJson};
use txfix_core::{hazard_from_json, Hazard, Recipe};
use txfix_corpus::Outcome;

/// One detected bug, with the recipe the paper's decision procedure
/// suggests for it. The kind is the workspace-wide
/// [`txfix_core::Hazard`] vocabulary — the same representation the
/// static analyzer reports in, so agreement matching and fix inference
/// consume one type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// What was detected.
    pub kind: Hazard,
    /// The suggested TM fix recipe (from `txfix_core::analysis::analyze`
    /// on the scenario's bug record), when the bug is TM-fixable.
    pub recipe: Option<Recipe>,
    /// Human-readable account of the finding and the suggested fix.
    pub explanation: String,
}

/// The result of analyzing one scenario run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Report {
    /// The scenario key.
    pub scenario: String,
    /// Which variant ran (`buggy`, `dev`, `tm`).
    pub variant: String,
    /// What the run itself observed.
    pub outcome: Outcome,
    /// How many events the recorder captured.
    pub events: usize,
    /// Everything the analysis passes detected.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Whether the analysis found anything.
    pub fn has_findings(&self) -> bool {
        !self.findings.is_empty()
    }

    /// Parse a report back from [`ToJson::to_json`] output.
    ///
    /// # Errors
    ///
    /// A description of the first malformed construct.
    pub fn from_json(input: &str) -> Result<Report, String> {
        let v = Json::parse(input)?;
        let obj = v.object("report")?;
        let outcome_obj = get(obj, "outcome")?.object("outcome")?;
        let outcome = match get(outcome_obj, "kind")?.string("outcome.kind")?.as_str() {
            "correct" => Outcome::Correct,
            "bug_observed" => {
                Outcome::BugObserved(get(outcome_obj, "detail")?.string("outcome.detail")?)
            }
            other => return Err(format!("unknown outcome kind {other:?}")),
        };
        let findings = get(obj, "findings")?
            .array("findings")?
            .iter()
            .map(finding_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Report {
            scenario: get(obj, "scenario")?.string("scenario")?,
            variant: get(obj, "variant")?.string("variant")?,
            outcome,
            events: get(obj, "events")?.number("events")? as usize,
            findings,
        })
    }
}

impl ToJson for Report {
    fn to_json_value(&self) -> Json {
        let outcome = match &self.outcome {
            Outcome::Correct => Json::obj([("kind", Json::str("correct"))]),
            Outcome::BugObserved(detail) => Json::obj([
                ("kind", Json::str("bug_observed")),
                ("detail", Json::str(detail.clone())),
            ]),
        };
        Json::obj([
            ("scenario", Json::str(self.scenario.clone())),
            ("variant", Json::str(self.variant.clone())),
            ("outcome", outcome),
            ("events", Json::int(self.events as u64)),
            ("findings", Json::list(self.findings.iter().map(ToJson::to_json_value))),
        ])
    }
}

impl ToJson for Finding {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("bug", self.kind.to_json_value()),
            ("recipe", self.recipe.map_or(Json::Null, |r| Json::str(r.slug()))),
            ("explanation", Json::str(self.explanation.clone())),
        ])
    }
}

fn finding_from_json(v: &Json) -> Result<Finding, String> {
    let obj = v.object("finding")?;
    let kind = hazard_from_json(get(obj, "bug")?)?;
    let recipe = match get(obj, "recipe")? {
        Json::Null => None,
        v => Some(Recipe::from_slug(&v.string("recipe")?)?),
    };
    Ok(Finding { kind, recipe, explanation: get(obj, "explanation")?.string("explanation")? })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        Report {
            scenario: "av_wrong_lock".into(),
            variant: "buggy".into(),
            outcome: Outcome::BugObserved("lost update: counter is 1 \"quoted\"\n".into()),
            events: 42,
            findings: vec![
                Finding {
                    kind: Hazard::Race { loc: "m133773.counter".into() },
                    recipe: Some(Recipe::WrapAll),
                    explanation: "unordered conflicting accesses".into(),
                },
                Finding {
                    kind: Hazard::Atomicity { locs: vec!["a".into(), "b".into()] },
                    recipe: Some(Recipe::WrapUnprotected),
                    explanation: "non-serializable interleaving".into(),
                },
                Finding {
                    kind: Hazard::LockCycle { locks: vec!["atoms".into(), "cache".into()] },
                    recipe: None,
                    explanation: "both orders observed".into(),
                },
                Finding {
                    kind: Hazard::WaitCycle { cv: "cv".into(), lock: "outer".into() },
                    recipe: None,
                    explanation: "waiter holds what the notifier needs".into(),
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample_report();
        let parsed = Report::from_json(&r.to_json()).expect("round trip");
        assert_eq!(parsed, r);
    }

    #[test]
    fn correct_outcome_round_trips() {
        let r = Report {
            scenario: "x".into(),
            variant: "tm".into(),
            outcome: Outcome::Correct,
            events: 0,
            findings: vec![],
        };
        let parsed = Report::from_json(&r.to_json()).expect("round trip");
        assert_eq!(parsed, r);
        assert!(!parsed.has_findings());
    }

    #[test]
    fn every_recipe_round_trips_in_a_finding() {
        for recipe in [
            Recipe::ReplaceLocks,
            Recipe::WrapAll,
            Recipe::DeadlockPreemption,
            Recipe::WrapUnprotected,
        ] {
            let f = Finding {
                kind: Hazard::Race { loc: "x".into() },
                recipe: Some(recipe),
                explanation: String::new(),
            };
            let parsed = finding_from_json(&Json::parse(&f.to_json()).unwrap()).unwrap();
            assert_eq!(parsed, f);
        }
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(Report::from_json("{").is_err());
        assert!(Report::from_json("").is_err());
        assert!(Report::from_json(r#"{"scenario": 3}"#).is_err());
        let valid = sample_report().to_json();
        assert!(Report::from_json(&format!("{valid}x")).is_err(), "trailing garbage");
    }
}
