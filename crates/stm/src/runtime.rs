//! The transaction entry points: the [`TxnBuilder`] (and its [`atomic`] /
//! [`atomic_relaxed`] convenience wrappers) execute a transaction body
//! until it commits, handling conflicts, explicit aborts, blocking retry,
//! commit-before-wait and capacity overflow. The migration table from the
//! pre-builder entry points lives in the crate docs.

use crate::contention::Backoff;
use crate::error::{Abort, ConflictKind, StmResult, TxnError};
use crate::notifier;
use crate::obs;
use crate::obs::SiteId;
use crate::overhead::OverheadModel;
use crate::stats;
use crate::txn::{Txn, TxnKind, TxnOptions, WritePolicy};
use std::time::{Duration, Instant};

/// Diagnostic information about one completed `atomic` call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TxnReport {
    /// Total body executions, including the committing one.
    pub attempts: u64,
    /// Whether the committing attempt was irrevocable.
    pub committed_irrevocably: bool,
    /// Times the transaction blocked in `retry`.
    pub blocked_retries: u64,
    /// Times the transaction committed-and-waited on a wait point.
    pub waits: u64,
    /// Aborts caused by deadlock victimization or external kills.
    pub preemptions: u64,
}

/// Fluent configuration for a transaction, obtained from [`Txn::build`].
///
/// The builder is the single way to configure a transaction; terminal
/// methods [`run`](TxnBuilder::run) and [`try_run`](TxnBuilder::try_run)
/// execute a body under the accumulated options. It is `Clone` and can be
/// stored and reused — every `run` from the same builder starts a fresh
/// transaction.
///
/// # Examples
///
/// ```
/// use txfix_stm::{Txn, TVar};
///
/// let hits = TVar::new(0u64);
/// let (value, report) = Txn::build()
///     .site("docs_example")
///     .run(|txn| hits.modify(txn, |h| h + 1).map(|()| 1u64));
/// assert_eq!(value, 1);
/// assert!(report.attempts >= 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TxnBuilder {
    opts: TxnOptions,
}

impl Txn {
    /// Start configuring a transaction.
    pub fn build() -> TxnBuilder {
        TxnBuilder::default()
    }
}

impl TxnBuilder {
    /// Make the transaction *relaxed*: it may contain unsafe operations via
    /// [`Txn::unsafe_op`] at the cost of becoming irrevocable.
    pub fn relaxed(mut self) -> Self {
        self.opts.kind = TxnKind::Relaxed;
        self
    }

    /// Set the write policy (lazy write-back vs. eager in-place).
    pub fn write_policy(mut self, policy: WritePolicy) -> Self {
        self.opts.write_policy = policy;
        self
    }

    /// Give up with [`TxnError::RetryLimit`] after `n` attempts.
    pub fn max_attempts(mut self, n: u64) -> Self {
        self.opts.max_attempts = Some(n);
        self
    }

    /// Set the inter-attempt contention management policy.
    pub fn backoff(mut self, policy: crate::BackoffPolicy) -> Self {
        self.opts.backoff = policy;
        self
    }

    /// Bound the read and write sets (hardware TM model).
    pub fn capacity(mut self, reads: usize, writes: usize) -> Self {
        self.opts.read_capacity = Some(reads);
        self.opts.write_capacity = Some(writes);
        self
    }

    /// Set the modelled instrumentation cost (see [`OverheadModel`]).
    pub fn overhead(mut self, model: OverheadModel) -> Self {
        self.opts.overhead = model;
        self
    }

    /// Upper bound on one blocking interval of [`Txn::retry`]; on timeout
    /// the transaction re-executes anyway.
    pub fn retry_timeout(mut self, timeout: Duration) -> Self {
        self.opts.retry_timeout = timeout;
        self
    }

    /// Label transactions from this builder for per-site metrics
    /// attribution (see [`crate::obs`]). Interns `name` on first use.
    pub fn site(mut self, name: &'static str) -> Self {
        self.opts.site = obs::intern(name);
        self
    }

    /// The builder's metrics site (the unattributed site unless
    /// [`site`](TxnBuilder::site) was called).
    pub fn site_id(&self) -> SiteId {
        self.opts.site
    }

    /// Execute `body` as a transaction, retrying until it commits, and
    /// return its result together with a [`TxnReport`].
    ///
    /// # Panics
    ///
    /// Panics on terminal failure — the body cancelled, the attempt bound
    /// was exceeded, or a capacity bound was hit. Use
    /// [`try_run`](TxnBuilder::try_run) to observe those as errors.
    pub fn run<T>(&self, body: impl FnMut(&mut Txn) -> StmResult<T>) -> (T, TxnReport) {
        self.try_run(body).expect("transaction failed terminally; use try_run to handle this")
    }

    /// Execute `body` as a transaction, retrying until it commits or fails
    /// terminally.
    ///
    /// # Errors
    ///
    /// - [`TxnError::Cancelled`] if the body cancelled;
    /// - [`TxnError::RetryLimit`] if `max_attempts` was exceeded;
    /// - [`TxnError::Capacity`] if a capacity bound was exceeded.
    pub fn try_run<T>(
        &self,
        body: impl FnMut(&mut Txn) -> StmResult<T>,
    ) -> Result<(T, TxnReport), TxnError> {
        atomic_report(&self.opts, body)
    }
}

/// Execute `body` as an atomic transaction, retrying until it commits, and
/// return its result.
///
/// This is the reproduction of the paper's `atomic { ... }` language
/// construct, and a thin wrapper over [`Txn::build`]. The body may be
/// re-executed many times; it must confine its side effects to
/// transactional operations (reads/writes of [`TVar`](crate::TVar)s,
/// revocable locks, x-calls, hooks).
///
/// # Examples
///
/// ```
/// use txfix_stm::{atomic, TVar};
///
/// let a = TVar::new(1u32);
/// let b = TVar::new(2u32);
/// let sum = atomic(|txn| {
///     let x = a.read(txn)?;
///     let y = b.read(txn)?;
///     b.write(txn, x + y)?;
///     Ok(x + y)
/// });
/// assert_eq!(sum, 3);
/// assert_eq!(b.load(), 3);
/// ```
///
/// # Panics
///
/// Panics if the body calls [`Txn::cancel`]; use
/// [`TxnBuilder::try_run`] to observe cancellation as an error.
pub fn atomic<T>(body: impl FnMut(&mut Txn) -> StmResult<T>) -> T {
    Txn::build().run(body).0
}

/// Execute `body` as a *relaxed* transaction, which may perform unsafe
/// operations via [`Txn::unsafe_op`] at the cost of irrevocability. A thin
/// wrapper over [`Txn::build`]`.relaxed()`.
///
/// # Panics
///
/// Panics if the body calls [`Txn::cancel`].
pub fn atomic_relaxed<T>(body: impl FnMut(&mut Txn) -> StmResult<T>) -> T {
    Txn::build().relaxed().run(body).0
}

/// The retry loop shared by every entry point.
pub(crate) fn atomic_report<T>(
    opts: &TxnOptions,
    mut body: impl FnMut(&mut Txn) -> StmResult<T>,
) -> Result<(T, TxnReport), TxnError> {
    let mut backoff = Backoff::new(opts.backoff);
    let mut report = TxnReport::default();
    // One relaxed load when metrics are off; the timestamp and the
    // current-site scope exist only on the enabled path.
    let started = if obs::is_enabled() { Some(Instant::now()) } else { None };
    let _site_scope = obs::enter_site(opts.site);

    loop {
        report.attempts += 1;
        if let Some(max) = opts.max_attempts {
            if report.attempts > max {
                return Err(TxnError::RetryLimit { attempts: report.attempts - 1 });
            }
        }

        let mut txn = Txn::begin(opts, report.attempts);
        let outcome = body(&mut txn);

        match outcome {
            Ok(value) => match txn.commit() {
                Ok(()) => {
                    report.committed_irrevocably = txn.was_irrevocable();
                    if let Some(started) = started {
                        obs::note_commit(
                            opts.site,
                            report.attempts,
                            started.elapsed().as_nanos() as u64,
                        );
                    }
                    return Ok((value, report));
                }
                Err(abort) => {
                    txn.abort();
                    handle_abort(abort, &mut backoff, &mut report, opts.site)?;
                }
            },
            Err(Abort::Wait(wp)) => {
                // Commit-before-wait: publish the work done so far, then
                // block, then re-execute the body as a fresh transaction.
                let ticket = wp.prepare();
                match txn.commit() {
                    Ok(()) => {
                        stats::bump_waits();
                        obs::note_wait(opts.site);
                        report.waits += 1;
                        // The commit succeeded, so contention pressure is
                        // gone: the next attempt starts with fresh backoff.
                        backoff.reset();
                        wp.wait(ticket);
                    }
                    Err(abort) => {
                        txn.abort();
                        handle_abort(abort, &mut backoff, &mut report, opts.site)?;
                    }
                }
            }
            Err(Abort::Retry) => {
                stats::bump_retries();
                obs::note_retry_blocked(opts.site);
                report.blocked_retries += 1;
                let seen = notifier::global().epoch();
                let snapshot = txn.take_read_snapshot();
                txn.abort();
                if snapshot.is_empty() {
                    // Retrying with an empty read set would block forever;
                    // treat as plain backoff so the caller's loop progresses.
                    backoff_wait(&mut backoff, opts.site);
                } else {
                    while !snapshot.changed() {
                        if !notifier::global().wait_past(seen, opts.retry_timeout) {
                            break; // timeout: re-execute anyway
                        }
                    }
                }
            }
            Err(abort) => {
                txn.abort();
                handle_abort(abort, &mut backoff, &mut report, opts.site)?;
            }
        }
    }
}

fn handle_abort(
    abort: Abort,
    backoff: &mut Backoff,
    report: &mut TxnReport,
    site: SiteId,
) -> Result<(), TxnError> {
    match abort {
        Abort::Conflict(kind) => {
            match kind {
                ConflictKind::ReadValidation => stats::bump_conflicts_validation(),
                ConflictKind::OrecBusy => stats::bump_conflicts_orec(),
            }
            obs::note_conflict(site, kind);
            backoff_wait(backoff, site);
            Ok(())
        }
        Abort::Restart => {
            stats::bump_explicit_restarts();
            obs::note_restart(site);
            Ok(())
        }
        Abort::Deadlock => {
            stats::bump_deadlock_aborts();
            obs::note_deadlock(site);
            report.preemptions += 1;
            backoff_wait(backoff, site);
            Ok(())
        }
        Abort::Killed => {
            stats::bump_kills();
            obs::note_killed(site);
            report.preemptions += 1;
            backoff_wait(backoff, site);
            Ok(())
        }
        Abort::Cancel => Err(TxnError::Cancelled),
        Abort::Capacity(kind) => {
            stats::bump_capacity();
            obs::note_capacity(site);
            Err(TxnError::Capacity { kind, attempts: report.attempts })
        }
        Abort::Retry | Abort::Wait(_) => {
            unreachable!("retry/wait are handled before generic abort handling")
        }
    }
}

/// Back off between attempts, attributing the time to `site` when metrics
/// are on (disabled cost: one relaxed load).
fn backoff_wait(backoff: &mut Backoff, site: SiteId) {
    if obs::is_enabled() {
        let started = Instant::now();
        backoff.wait();
        obs::note_backoff(site, started.elapsed().as_nanos() as u64);
    } else {
        backoff.wait();
    }
}
