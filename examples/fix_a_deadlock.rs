//! Fixing a real deadlock three ways (paper §5.4.2, Apache-I).
//!
//! ```sh
//! cargo run --example fix_a_deadlock
//! ```
//!
//! Runs the Apache listener/worker miniature in its buggy form (the
//! deadlock is *detected*, not hung), then with the developers' fix, then
//! with the paper's Recipe 3 fix — a revocable timeout mutex plus `retry`
//! in place of the condition-variable wait.

use txfix::apps::apache::{run_apache1, Apache1Config, Apache1Variant};

fn main() {
    let base = Apache1Config { workers: 3, connections: 150, ..Default::default() };

    println!("Apache-I: listener holds the timeout mutex while waiting for an idle worker;");
    println!("workers need that mutex before they can announce availability.\n");

    for (label, variant) in [
        ("buggy (as shipped)", Apache1Variant::Buggy),
        ("developers' fix (unlock before wait + compensation)", Apache1Variant::DevFix),
        ("TM fix (recipe 3: revocable lock + retry)", Apache1Variant::TmFix),
    ] {
        let out = run_apache1(&Apache1Config { variant, ..base });
        if out.deadlocked {
            println!(
                "{label:55} -> DEADLOCK after {}/{} connections ({:?})",
                out.completed, base.connections, out.elapsed
            );
        } else {
            println!(
                "{label:55} -> {}/{} connections in {:?}",
                out.completed, base.connections, out.elapsed
            );
        }
    }

    println!("\nWhy the TM fix is simpler: the listener keeps its original 'pop and hand");
    println!("off atomically' structure. Finding no idle worker simply aborts the");
    println!("transaction — which releases the revocable mutex — and re-executes when a");
    println!("worker registers. No compensation code, no re-validation after re-locking.");
}
