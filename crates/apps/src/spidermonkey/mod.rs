//! A miniature of Mozilla SpiderMonkey's multi-threaded object layer.
//!
//! SpiderMonkey avoided per-object locks with an *ownership* (title
//! locking) protocol: the first thread to touch an object becomes its
//! exclusive owner and thereafter accesses it with no synchronization; a
//! second thread must *claim* the object, blocking until the owner
//! relinquishes at a safe point. Claiming while holding the global
//! `setSlotLock` is the Mozilla-I deadlock (paper §5.4.1, Figure 2).
//!
//! The module provides four interchangeable object stores:
//!
//! | store | corresponds to |
//! |---|---|
//! | [`OwnershipStore`] (buggy mode) | the shipped, deadlock-prone protocol |
//! | [`OwnershipStore`] (dev-fix mode) | developers' fix: drop ownership before blocking |
//! | [`StmStore`] | TM fix via Recipe 1 (locks → atomic regions), STM or HTM cost model |
//! | [`PreemptStore`] | TM fix via Recipe 3 (revocable locks + preemptible claim path) |
//!
//! plus a script-interpreter workload ([`run_script_workload`]) standing in for
//! SunSpider.

mod ownership;
mod script;
mod store;
mod tm;

pub use ownership::{OwnershipMode, OwnershipStore};
pub use script::{run_script_workload, ScriptParams, WorkloadResult};
pub use store::ObjectStore;
pub use tm::{HwModelStore, PreemptStore, StmStore};
