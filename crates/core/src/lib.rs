//! # txfix-core: the paper's contribution — fix recipes and bug analysis
//!
//! *Applying Transactional Memory to Concurrency Bugs* (ASPLOS 2012) is an
//! empirical methodology: four **recipes** for applying TM to existing
//! buggy code, plus a decision procedure for when each applies and a
//! difficulty model comparing TM fixes against what developers actually
//! shipped. This crate is that methodology as a library:
//!
//! - [`recipe`]: runtime combinators for the four recipes —
//!   [`replace_locks_atomic`] (Recipe 1), [`wrap_all_atomic`] (Recipe 2),
//!   [`preemptible`] (Recipe 3, asymmetric deadlock preemption over
//!   revocable locks), and [`wrap_unprotected_atomic`] (Recipe 4,
//!   atomic/lock serialization).
//! - [`bug`]: the [`BugRecord`] model capturing each studied bug's
//!   structure (lock cycles, CV waits, missing-sync class, downcalls, the
//!   developers' fix).
//! - [`analysis`]: [`analyze`] — the §5.3 rules deciding whether TM can
//!   fix a bug and with which recipe.
//! - [`difficulty`]: the §5.2 effort model rating TM fixes
//!   easy/medium/hard and picking the preferable fix.
//! - [`finding`]: the unified [`Hazard`] vocabulary every analyzer
//!   (static, dynamic, region inference) reports in.
//! - [`report`]: rebuild the paper's Tables 1–3 from any dataset
//!   ([`table1`], [`table2`], [`table3`], [`CorpusSummary`]).
//! - [`json`]: the hand-rolled JSON reader/writer shared by the
//!   machine-readable report formats (no serde in this build).
//!
//! The 60-bug dataset itself lives in `txfix-corpus`, which also provides
//! executable reproductions of the 18 implemented fixes.

#![warn(missing_docs)]

pub mod analysis;
pub mod bug;
pub mod difficulty;
pub mod finding;
pub mod json;
pub mod recipe;
pub mod report;
pub mod sweep;

pub use analysis::{
    analyze, fallback_recipe, recipe_candidates, Analysis, FixPlan, HazardClass, Recipe,
    UnfixableReason,
};
pub use bug::{App, BugChars, BugKind, BugRecord, DevFix, Difficulty, Downcalls, MissingSync};
pub use difficulty::{preference, tm_difficulty, Preference};
pub use finding::{hazard_from_json, Hazard};
pub use recipe::{
    preemptible, preemptible_report, replace_locks_atomic, wrap_all_atomic,
    wrap_unprotected_atomic, PreemptOptions,
};
pub use report::{table1, table2, table3, CorpusSummary, FixabilityCell, TextTable};
