//! The shared frame around every `txfix` sweep subcommand.
//!
//! Six CLI sweeps (`stress`, `chaos`, `explore`, `autofix`, `canary`,
//! `list`) share the same life cycle: parse a scenario selection plus the
//! common `--json` / `--seed` / `--out` flags, run, render either the JSON
//! document or a human table, persist the document to a canonical artifact
//! at the repo root plus a timestamped copy under `results/`, and exit
//! nonzero when the sweep's own pass/fail verdict says so. Each command
//! implements [`SweepRunner`] with just its command-specific parts —
//! extra flags, selection validation, execution — and [`run_sweep`]
//! supplies the frame once, instead of six hand-rolled copies of it.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// What a [`SweepRunner`] made of one command-specific flag.
pub enum Flag {
    /// Not a flag this sweep knows; the driver reports an error.
    Unknown,
    /// Flag consumed; it took no value.
    Seen,
    /// Flag consumed together with the argument that followed it.
    SeenWithValue,
}

/// The common options every sweep accepts, parsed by [`run_sweep`] and
/// handed to [`SweepRunner::execute`].
#[derive(Clone, Debug, Default)]
pub struct SweepArgs {
    /// Positional scenario/canary keys (empty when `--all` or for sweeps
    /// without a selection).
    pub keys: Vec<String>,
    /// `--all`: sweep the full matrix.
    pub all: bool,
    /// `--json`: print the document instead of the human rendering.
    pub json: bool,
    /// `--seed S`: deterministic seed, when the sweep takes one.
    pub seed: Option<u64>,
    /// `--out PATH`: canonical artifact destination override.
    pub out: Option<PathBuf>,
}

/// The product of one sweep execution.
pub struct SweepOutput {
    /// The machine-readable report document (no trailing newline).
    pub rendered: String,
    /// The human rendering printed without `--json` (may be multi-line).
    pub table: String,
    /// The sweep's verdict; `false` exits nonzero after the artifact is
    /// written (a failing sweep still leaves its evidence on disk).
    pub ok: bool,
    /// Message printed to stderr when `ok` is `false`.
    pub failure: &'static str,
}

/// One `txfix` sweep subcommand behind the shared [`run_sweep`] frame.
pub trait SweepRunner {
    /// Subcommand name, for error messages (`"stress"`).
    fn name(&self) -> &'static str;

    /// Canonical artifact file name (`"BENCH_stm.json"`), or `None` for
    /// sweeps that only print (`list`).
    fn artifact(&self) -> Option<&'static str>;

    /// Whether `--seed` is meaningful for this sweep (`list` says no, and
    /// passing one becomes a usage error).
    fn takes_seed(&self) -> bool {
        true
    }

    /// Handle one command-specific flag. `value` is the argument after the
    /// flag, if any; return [`Flag::SeenWithValue`] to consume it.
    ///
    /// # Errors
    ///
    /// A usage message when the flag is recognized but its value is
    /// missing or malformed.
    fn flag(&mut self, flag: &str, value: Option<&str>) -> Result<Flag, String> {
        let _ = value;
        let _ = flag;
        Ok(Flag::Unknown)
    }

    /// Validate the scenario selection before anything runs. The default
    /// accepts any selection; sweeps with a fixed key set reject unknown
    /// keys here, and sweeps that need an explicit selection reject the
    /// empty one.
    ///
    /// # Errors
    ///
    /// A usage message naming the valid selections.
    fn select(&mut self, args: &SweepArgs) -> Result<(), String> {
        let _ = args;
        Ok(())
    }

    /// Run the sweep and produce its document and rendering.
    ///
    /// # Errors
    ///
    /// A usage message; [`run_sweep`] prints it and exits nonzero.
    fn execute(&mut self, args: &SweepArgs) -> Result<SweepOutput, String>;
}

fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Parse `raw` into the common [`SweepArgs`], delegating unknown flags to
/// the runner.
///
/// # Errors
///
/// A usage message for malformed or unknown options.
pub fn parse_sweep_args(runner: &mut dyn SweepRunner, raw: &[String]) -> Result<SweepArgs, String> {
    let mut args = SweepArgs::default();
    let mut i = 0;
    while i < raw.len() {
        let opt = raw[i].as_str();
        match opt {
            "--all" => args.all = true,
            "--json" => args.json = true,
            "--seed" => {
                if !runner.takes_seed() {
                    return Err(format!("{} does not take --seed", runner.name()));
                }
                i += 1;
                match raw.get(i).map(String::as_str).and_then(parse_seed) {
                    Some(s) => args.seed = Some(s),
                    None => return Err("--seed takes an integer (decimal or 0x-hex)".into()),
                }
            }
            "--out" => {
                if runner.artifact().is_none() {
                    return Err(format!(
                        "{} writes no artifact, so --out is meaningless",
                        runner.name()
                    ));
                }
                i += 1;
                match raw.get(i) {
                    Some(p) if !p.is_empty() => args.out = Some(PathBuf::from(p)),
                    _ => return Err("--out takes a file path".into()),
                }
            }
            _ if opt.starts_with('-') => {
                let value = raw.get(i + 1).map(String::as_str);
                match runner.flag(opt, value)? {
                    Flag::Seen => {}
                    Flag::SeenWithValue => i += 1,
                    Flag::Unknown => return Err(format!("unknown option `{opt}`")),
                }
            }
            key => args.keys.push(key.to_string()),
        }
        i += 1;
    }
    Ok(args)
}

/// Write the canonical artifact plus a timestamped copy under `results/`,
/// returning the per-run path.
///
/// # Errors
///
/// An I/O message naming the path that failed.
pub fn write_artifact(canonical: &Path, rendered: &str) -> Result<PathBuf, String> {
    let body = format!("{rendered}\n");
    std::fs::write(canonical, &body)
        .map_err(|e| format!("cannot write {}: {e}", canonical.display()))?;
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let stem = canonical.file_stem().and_then(|s| s.to_str()).unwrap_or("SWEEP");
    let per_run = PathBuf::from(format!("results/{stem}_{stamp}.json"));
    std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write(&per_run, &body))
        .map_err(|e| format!("cannot write {}: {e}", per_run.display()))?;
    Ok(per_run)
}

/// Outcome of [`run_sweep`]: exit success, or a usage error carrying the
/// message for the caller's usage printer.
pub enum SweepExit {
    /// The sweep ran; exit with this code.
    Done(ExitCode),
    /// Argument/selection error; print usage with this message.
    Usage(String),
}

/// The shared frame: parse, select, execute, print, persist, exit.
pub fn run_sweep(runner: &mut dyn SweepRunner, raw: &[String]) -> SweepExit {
    let args = match parse_sweep_args(runner, raw) {
        Ok(a) => a,
        Err(e) => return SweepExit::Usage(e),
    };
    if let Err(e) = runner.select(&args) {
        return SweepExit::Usage(e);
    }
    let out = match runner.execute(&args) {
        Ok(o) => o,
        Err(e) => return SweepExit::Usage(e),
    };
    if args.json {
        println!("{}", out.rendered);
    } else if !out.table.is_empty() {
        println!("{}", out.table);
    }
    if let Some(name) = runner.artifact() {
        let canonical = args.out.clone().unwrap_or_else(|| PathBuf::from(name));
        match write_artifact(&canonical, &out.rendered) {
            Ok(per_run) => {
                if !args.json {
                    println!("\nwrote {} and {}", canonical.display(), per_run.display());
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return SweepExit::Done(ExitCode::FAILURE);
            }
        }
    }
    if out.ok {
        SweepExit::Done(ExitCode::SUCCESS)
    } else {
        eprintln!("error: {}", out.failure);
        SweepExit::Done(ExitCode::FAILURE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy {
        secs: Option<f64>,
        artifact: Option<&'static str>,
        seedable: bool,
    }

    impl Dummy {
        fn new() -> Dummy {
            Dummy { secs: None, artifact: Some("DUMMY.json"), seedable: true }
        }
    }

    impl SweepRunner for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn artifact(&self) -> Option<&'static str> {
            self.artifact
        }
        fn takes_seed(&self) -> bool {
            self.seedable
        }
        fn flag(&mut self, flag: &str, value: Option<&str>) -> Result<Flag, String> {
            match flag {
                "--secs" => match value.and_then(|v| v.parse::<f64>().ok()) {
                    Some(s) if s > 0.0 => {
                        self.secs = Some(s);
                        Ok(Flag::SeenWithValue)
                    }
                    _ => Err("--secs takes a positive number".into()),
                },
                "--bare" => Ok(Flag::Seen),
                _ => Ok(Flag::Unknown),
            }
        }
        fn execute(&mut self, _args: &SweepArgs) -> Result<SweepOutput, String> {
            unreachable!("parse-only tests")
        }
    }

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn common_flags_parse() {
        let mut d = Dummy::new();
        let a = parse_sweep_args(
            &mut d,
            &strs(&["key_a", "--json", "--seed", "0x2A", "--out", "X.json", "--all"]),
        )
        .unwrap();
        assert_eq!(a.keys, vec!["key_a"]);
        assert!(a.json && a.all);
        assert_eq!(a.seed, Some(42));
        assert_eq!(a.out.as_deref(), Some(Path::new("X.json")));
    }

    #[test]
    fn command_flags_delegate_with_and_without_values() {
        let mut d = Dummy::new();
        let a = parse_sweep_args(&mut d, &strs(&["--secs", "1.5", "--bare", "k"])).unwrap();
        assert_eq!(d.secs, Some(1.5));
        assert_eq!(a.keys, vec!["k"]);
    }

    #[test]
    fn unknown_flags_and_bad_values_are_usage_errors() {
        let mut d = Dummy::new();
        assert!(parse_sweep_args(&mut d, &strs(&["--nope"])).is_err());
        assert!(parse_sweep_args(&mut d, &strs(&["--secs", "-1"])).is_err());
        assert!(parse_sweep_args(&mut d, &strs(&["--seed", "zzz"])).is_err());
    }

    #[test]
    fn capability_gates_reject_inapplicable_common_flags() {
        let mut d = Dummy::new();
        d.seedable = false;
        assert!(parse_sweep_args(&mut d, &strs(&["--seed", "7"])).is_err());
        let mut d = Dummy::new();
        d.artifact = None;
        assert!(parse_sweep_args(&mut d, &strs(&["--out", "X.json"])).is_err());
    }

    #[test]
    fn artifact_writer_places_canonical_and_timestamped_copies() {
        let dir = std::env::temp_dir().join(format!("txfix_sweep_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let prev = std::env::current_dir().unwrap();
        // Serialize against other tests touching cwd (none today).
        std::env::set_current_dir(&dir).unwrap();
        let res = write_artifact(Path::new("DUMMY.json"), "{\"x\":1}");
        let canonical = std::fs::read_to_string("DUMMY.json");
        std::env::set_current_dir(prev).unwrap();
        let per_run = res.unwrap();
        assert!(per_run.starts_with("results"));
        assert_eq!(canonical.unwrap(), "{\"x\":1}\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
