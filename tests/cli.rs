//! End-to-end tests of the `txfix` CLI binary.

use std::process::Command;

fn txfix(args: &[&str]) -> (String, bool) {
    let exe = env!("CARGO_BIN_EXE_txfix");
    let out = Command::new(exe).args(args).output().expect("run txfix");
    (String::from_utf8_lossy(&out.stdout).into_owned(), out.status.success())
}

#[test]
fn summary_reports_headline_numbers() {
    let (out, ok) = txfix(&["summary"]);
    assert!(ok);
    assert!(out.contains("bugs examined:                 60"));
    assert!(out.contains("TM can fix:                    43"));
}

#[test]
fn tables_render() {
    let (out, ok) = txfix(&["tables"]);
    assert!(ok);
    assert!(out.contains("Table 1."));
    assert!(out.contains("Table 2."));
    assert!(out.contains("Table 3."));
}

#[test]
fn bugs_filters_work() {
    let (all, ok) = txfix(&["bugs"]);
    assert!(ok);
    assert_eq!(all.lines().count(), 60);
    let (unfix, ok) = txfix(&["bugs", "--unfixable"]);
    assert!(ok);
    assert_eq!(unfix.lines().count(), 17);
    assert!(unfix.contains("NOT FIXABLE"));
    let (imp, ok) = txfix(&["bugs", "--implemented"]);
    assert!(ok);
    assert_eq!(imp.lines().count(), 18);
}

#[test]
fn show_explains_a_paper_named_bug() {
    let (out, ok) = txfix(&["show", "Mozilla#65146"]);
    assert!(ok);
    assert!(out.contains("TM cannot fix this bug"));
    assert!(out.contains("two-way communication"));
}

#[test]
fn scenario_runs_a_fast_reproduction() {
    let (out, ok) = txfix(&["scenario", "av_refcount_race"]);
    assert!(ok);
    assert!(out.contains("BUG:"));
    assert!(out.contains("clean"));
}

#[test]
fn bad_input_fails_with_usage() {
    let (_, ok) = txfix(&["show"]);
    assert!(!ok);
    let (_, ok) = txfix(&["frobnicate"]);
    assert!(!ok);
}
