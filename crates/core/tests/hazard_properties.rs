//! Property tests over the hazard vocabulary: [`Hazard::class`] and
//! [`Hazard::overlaps`] are the glue between the static and dynamic
//! analyzers (agreement matrix, inference dedup), so their algebra —
//! totality, symmetry, class discipline, JSON stability — must hold for
//! *any* hazard, not just the ones the corpus happens to produce.

use proptest::prelude::*;
use txfix_core::json::{Json, ToJson};
use txfix_core::{hazard_from_json, Hazard, HazardClass};

/// A small closed name pool so generated hazards actually collide.
fn name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("stats".to_string()),
        Just("cache".to_string()),
        Just("queue".to_string()),
        Just("log".to_string()),
        Just("cv.ready".to_string()),
    ]
}

fn names() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(name(), 1..4)
}

fn hazard() -> impl Strategy<Value = Hazard> {
    prop_oneof![
        name().prop_map(|loc| Hazard::Race { loc }),
        names().prop_map(|locs| Hazard::Atomicity { locs }),
        names().prop_map(|locks| Hazard::LockCycle { locks }),
        (name(), name()).prop_map(|(cv, lock)| Hazard::WaitCycle { cv, lock }),
        (name(), name()).prop_map(|(cv, loc)| Hazard::LostWakeup { cv, loc }),
    ]
}

proptest! {
    /// `class` is total and stable under the variant's shape: the same
    /// constructor always lands in the same class, whatever the names.
    #[test]
    fn class_depends_only_on_the_variant(h in hazard()) {
        let expected = match &h {
            Hazard::Race { .. } | Hazard::Atomicity { .. } => HazardClass::SharedData,
            Hazard::LockCycle { .. } => HazardClass::LockCycle,
            Hazard::WaitCycle { .. } => HazardClass::WaitCycle,
            Hazard::LostWakeup { .. } => HazardClass::LostWakeup,
        };
        prop_assert_eq!(h.class(), expected);
    }

    /// Every hazard names at least one subject, so `overlaps` is
    /// reflexive: a finding always matches itself.
    #[test]
    fn overlap_is_reflexive(h in hazard()) {
        prop_assert!(!h.subjects().is_empty());
        prop_assert!(h.overlaps(&h));
    }

    /// `overlaps` is symmetric — the agreement matrix must not depend on
    /// which analyzer's finding is on the left.
    #[test]
    fn overlap_is_symmetric(a in hazard(), b in hazard()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    /// `overlaps` never crosses classes, and within a class it holds
    /// exactly when a subject name is shared.
    #[test]
    fn overlap_requires_same_class_and_shared_subject(a in hazard(), b in hazard()) {
        let shared = a.subjects().iter().any(|s| b.subjects().contains(s));
        prop_assert_eq!(a.overlaps(&b), a.class() == b.class() && shared);
        if a.class() != b.class() {
            prop_assert!(!a.overlaps(&b));
        }
    }

    /// The JSON encoding is faithful to the algebra: round-tripping
    /// preserves the hazard, hence its class and overlap behavior.
    #[test]
    fn json_round_trip_preserves_class_and_overlap(a in hazard(), b in hazard()) {
        let a2 = hazard_from_json(&Json::parse(&a.to_json()).unwrap()).unwrap();
        prop_assert_eq!(&a2, &a);
        prop_assert_eq!(a2.class(), a.class());
        prop_assert_eq!(a2.overlaps(&b), a.overlaps(&b));
    }
}

#[test]
fn class_names_partition_the_vocabulary() {
    // One representative per variant; the four classes cover all five
    // variants with Race and Atomicity deliberately sharing SharedData.
    let reps = [
        (Hazard::Race { loc: "x".into() }, HazardClass::SharedData),
        (Hazard::Atomicity { locs: vec!["x".into()] }, HazardClass::SharedData),
        (Hazard::LockCycle { locks: vec!["a".into(), "b".into()] }, HazardClass::LockCycle),
        (Hazard::WaitCycle { cv: "cv".into(), lock: "l".into() }, HazardClass::WaitCycle),
        (Hazard::LostWakeup { cv: "cv".into(), loc: "x".into() }, HazardClass::LostWakeup),
    ];
    for (h, class) in reps {
        assert_eq!(h.class(), class, "{h}");
    }
}

#[test]
fn race_and_atomicity_on_one_location_are_one_bug() {
    let race = Hazard::Race { loc: "stats".into() };
    let av = Hazard::Atomicity { locs: vec!["stats".into(), "total".into()] };
    assert!(race.overlaps(&av));
    assert!(av.overlaps(&race));
    // ...but a lock cycle through the same name is a different bug.
    let cycle = Hazard::LockCycle { locks: vec!["stats".into()] };
    assert!(!race.overlaps(&cycle));
}
