//! The `txfix-explore-v1` report format.
//!
//! Deliberately excludes wall-clock time and anything else
//! non-deterministic: CI runs the sweep twice and byte-compares the JSON
//! to prove replayability, so every field must be a pure function of
//! `(corpus, strategy, seed, budget)`.

use txfix_core::json::{Json, ToJson};

/// Format identifier.
pub const FORMAT: &str = "txfix-explore-v1";

/// Details of the first failing schedule for a buggy variant, after
/// minimization.
#[derive(Clone, Debug)]
pub struct FailureReport {
    /// What broke (invariant message, deadlock description, panic).
    pub message: String,
    /// Replayable decision trace in `a.b.c` form.
    pub trace: String,
    /// Scheduling decisions in the failing schedule.
    pub depth: u64,
    /// Context switches in the (minimized) failing schedule.
    pub preemptions: u64,
    /// Schedules executed before this one failed (1-based ordinal).
    pub found_after: u64,
}

/// One (scenario, variant) exploration.
#[derive(Clone, Debug)]
pub struct EntryReport {
    /// Corpus key.
    pub key: String,
    /// Variant name (`buggy` / `dev` / `tm`).
    pub variant: String,
    /// Schedules run to a verdict.
    pub schedules: u64,
    /// Schedules abandoned by partial-order reduction.
    pub pruned: u64,
    /// Schedules that hit the step bound (inconclusive).
    pub step_limited: u64,
    /// True if DFS exhausted the reduced state space within budget.
    pub exhausted: bool,
    /// The failure, for buggy variants that broke (expected) or fixed
    /// variants that broke (a finding!).
    pub failure: Option<FailureReport>,
    /// Whether the outcome matches the variant's expectation: buggy must
    /// fail within budget, dev/tm must survive every explored schedule.
    pub ok: bool,
}

/// The whole sweep.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Strategy name (`dfs` / `pct`).
    pub strategy: String,
    /// Per-(scenario, variant) schedule budget.
    pub budget: u64,
    /// Base seed (PCT; DFS ignores it but it is recorded for replay).
    pub seed: u64,
    /// Every explored (scenario, variant).
    pub entries: Vec<EntryReport>,
}

impl ExploreReport {
    /// True if every entry met its expectation.
    pub fn ok(&self) -> bool {
        self.entries.iter().all(|e| e.ok)
    }
}

impl ToJson for FailureReport {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("message", Json::str(&self.message)),
            ("trace", Json::str(&self.trace)),
            ("depth", Json::int(self.depth)),
            ("preemptions", Json::int(self.preemptions)),
            ("found_after", Json::int(self.found_after)),
        ])
    }
}

impl ToJson for EntryReport {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("key", Json::str(&self.key)),
            ("variant", Json::str(&self.variant)),
            ("schedules", Json::int(self.schedules)),
            ("pruned", Json::int(self.pruned)),
            ("step_limited", Json::int(self.step_limited)),
            ("exhausted", Json::Bool(self.exhausted)),
            (
                "failure",
                match &self.failure {
                    Some(f) => f.to_json_value(),
                    None => Json::Null,
                },
            ),
            ("ok", Json::Bool(self.ok)),
        ])
    }
}

impl ToJson for ExploreReport {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("schema", Json::str(FORMAT)),
            ("strategy", Json::str(&self.strategy)),
            ("budget", Json::int(self.budget)),
            ("seed", Json::int(self.seed)),
            ("ok", Json::Bool(self.ok())),
            ("entries", Json::list(self.entries.iter().map(|e| e.to_json_value()))),
        ])
    }
}
