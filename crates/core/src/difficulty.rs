//! The difficulty model of §5.2: rate each TM fix as easy/medium/hard from
//! its structural characteristics, and compare against the developers'
//! fix to decide which is preferable.

use crate::analysis::{Analysis, Recipe};
use crate::bug::{BugRecord, Difficulty};

/// Which fix the study judges preferable for a fixable bug.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Preference {
    /// The TM fix has strictly lower combined effort.
    Tm,
    /// The developers' fix is as easy as TM's or easier (the paper favors
    /// the developers' fix on ties — "as easy as TM or easier").
    Developers,
}

/// Rate the TM fix for `bug` given its `analysis`.
///
/// The rules transcribe the judgments spelled out in §5.3–§5.4:
///
/// - Recipe 3 fixes are **hard** when a condition-variable wait must be
///   argued equivalent to a `retry`, otherwise **medium** (reasoning that
///   preemption is safe);
/// - Recipe 1 fixes scale with how many sites must switch from locks to
///   atomic regions (Mozilla-I's 15-file change is hard);
/// - Recipe 2/4 fixes are **easy** when a single atomic block suffices,
///   **medium** when downcalls must be argued safe or a handful of sites
///   change, **hard** when the rewrite is distributed.
///
/// Returns `None` for unfixable bugs.
pub fn tm_difficulty(bug: &BugRecord, analysis: &Analysis) -> Option<Difficulty> {
    let plan = analysis.plan()?;
    let c = &bug.chars;
    let d = match plan.primary {
        Recipe::DeadlockPreemption => {
            if c.downcalls.retry {
                Difficulty::Hard
            } else {
                Difficulty::Medium
            }
        }
        Recipe::ReplaceLocks => {
            if c.fix_sites > 10 {
                Difficulty::Hard
            } else if c.fix_sites > 3 {
                Difficulty::Medium
            } else {
                Difficulty::Easy
            }
        }
        Recipe::WrapAll | Recipe::WrapUnprotected => {
            if c.fix_sites > 10 {
                Difficulty::Hard
            } else if c.fix_sites > 3 {
                Difficulty::Medium
            } else if c.single_atomic_block && !c.downcalls.needs_reasoning() {
                Difficulty::Easy
            } else if c.downcalls.needs_reasoning() {
                Difficulty::Medium
            } else {
                Difficulty::Easy
            }
        }
    };
    Some(d)
}

/// Compare the TM fix against the developers' fix.
///
/// TM wins on strictly lower effort, or on equal effort when the TM fix
/// has side benefits (retires a fragile protocol / fixes further bugs, as
/// with Mozilla-I). Otherwise the developers' fix is favored ("as easy as
/// TM or easier", §5.3.1).
///
/// Returns `None` for unfixable bugs (no TM fix to compare).
pub fn preference(bug: &BugRecord, analysis: &Analysis) -> Option<Preference> {
    let tm = tm_difficulty(bug, analysis)?;
    let dev = bug.dev_fix.difficulty;
    Some(if tm < dev || (tm == dev && bug.chars.fix_extra_benefits) {
        Preference::Tm
    } else {
        Preference::Developers
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::bug::{App, BugChars, BugKind, DevFix, Downcalls, MissingSync};

    fn record(kind: BugKind, chars: BugChars, dev: Difficulty) -> BugRecord {
        BugRecord {
            id: "Test#1",
            app: App::Apache,
            kind,
            synthetic_id: true,
            summary: "test",
            chars,
            dev_fix: DevFix { difficulty: dev, loc: 10, attempts: 1 },
            scenario: None,
        }
    }

    #[test]
    fn single_block_no_downcalls_is_easy() {
        let b = record(
            BugKind::AtomicityViolation,
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                single_atomic_block: true,
                fix_sites: 1,
                ..Default::default()
            },
            Difficulty::Medium,
        );
        let a = analyze(&b);
        assert_eq!(tm_difficulty(&b, &a), Some(Difficulty::Easy));
        assert_eq!(preference(&b, &a), Some(Preference::Tm));
    }

    #[test]
    fn single_block_with_io_downcall_stays_easy() {
        // Apache-II: one atomic block whose flush is an x-call — the paper
        // judges it easy.
        let b = record(
            BugKind::AtomicityViolation,
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                single_atomic_block: true,
                fix_sites: 1,
                downcalls: Downcalls { io: true, ..Downcalls::NONE },
                ..Default::default()
            },
            Difficulty::Medium,
        );
        let a = analyze(&b);
        assert_eq!(tm_difficulty(&b, &a), Some(Difficulty::Easy));
        assert_eq!(preference(&b, &a), Some(Preference::Tm));
    }

    #[test]
    fn single_block_with_library_downcall_is_medium() {
        let b = record(
            BugKind::AtomicityViolation,
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                single_atomic_block: true,
                fix_sites: 1,
                downcalls: Downcalls { library: true, ..Downcalls::NONE },
                ..Default::default()
            },
            Difficulty::Medium,
        );
        let a = analyze(&b);
        assert_eq!(tm_difficulty(&b, &a), Some(Difficulty::Medium));
        // Tie goes to the developers.
        assert_eq!(preference(&b, &a), Some(Preference::Developers));
    }

    #[test]
    fn wide_lock_replacement_is_hard() {
        let b = record(
            BugKind::Deadlock,
            BugChars { lock_cycle: true, fix_sites: 15, ..Default::default() },
            Difficulty::Hard,
        );
        let a = analyze(&b);
        assert_eq!(tm_difficulty(&b, &a), Some(Difficulty::Hard));
    }

    #[test]
    fn retry_based_preemption_is_hard() {
        let b = record(
            BugKind::Deadlock,
            BugChars {
                cv_wait: true,
                fix_sites: 2,
                downcalls: Downcalls { retry: true, ..Downcalls::NONE },
                ..Default::default()
            },
            Difficulty::Hard,
        );
        let a = analyze(&b);
        assert_eq!(tm_difficulty(&b, &a), Some(Difficulty::Hard));
    }

    #[test]
    fn plain_preemption_is_medium() {
        let b = record(
            BugKind::Deadlock,
            BugChars { cv_wait: true, fix_sites: 1, ..Default::default() },
            Difficulty::Hard,
        );
        let a = analyze(&b);
        assert_eq!(tm_difficulty(&b, &a), Some(Difficulty::Medium));
        assert_eq!(preference(&b, &a), Some(Preference::Tm));
    }

    #[test]
    fn unfixable_has_no_difficulty() {
        let b = record(
            BugKind::Deadlock,
            BugChars { design_flaw: true, ..Default::default() },
            Difficulty::Hard,
        );
        let a = analyze(&b);
        assert_eq!(tm_difficulty(&b, &a), None);
        assert_eq!(preference(&b, &a), None);
    }
}
