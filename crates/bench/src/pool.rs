//! The worker-pool and invariant-sink helpers shared by the stress and
//! chaos harnesses.
//!
//! Both harnesses spawn a scoped pool of workers executing `op(worker,
//! iteration)` with the per-worker backoff-jitter RNG pinned from the run
//! seed — the only difference is the loop condition (wall-clock deadline
//! for stress, fixed op count for chaos) and whether per-op latency is
//! recorded. This module holds the one copy of that machinery.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};
use txfix_stm::chaos::splitmix64;
use txfix_stm::obs::{self, HistogramSnapshot, HIST_BUCKETS};

/// Pin the calling worker's only implicit randomized state — the
/// backoff-jitter RNG — deterministically from the run seed and worker
/// index, so sweeps are reproducible per seed.
pub fn pin_worker_rng(seed: u64, worker: usize) {
    txfix_stm::seed_backoff_rng(splitmix64(
        seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    ));
}

/// Spawn `workers` scoped threads each executing `op(worker, i)` exactly
/// `ops` times (the chaos harness's count-based shape: the total work is
/// a function of the configuration, never of timing). Returns total ops.
pub fn run_fixed(workers: usize, ops: u64, seed: u64, op: impl Fn(usize, u64) + Sync) -> u64 {
    std::thread::scope(|s| {
        for t in 0..workers {
            let op = &op;
            s.spawn(move || {
                pin_worker_rng(seed, t);
                for i in 0..ops {
                    op(t, i);
                }
            });
        }
    });
    workers as u64 * ops
}

/// What a deadline-bounded pool run measured.
pub struct TimedRun {
    /// Total operations completed across workers.
    pub ops: u64,
    /// Wall-clock duration actually spent (≥ the requested deadline).
    pub elapsed_secs: f64,
    /// Per-op latency in the observability layer's log₂ buckets.
    pub latency: HistogramSnapshot,
}

/// Spawn `workers` scoped threads looping `op(worker, i)` until `secs` of
/// wall clock elapse (the stress harness's open-ended shape), recording
/// every op's latency. Returns after all workers have joined, so
/// follow-up observability deltas are taken at quiescence.
pub fn run_timed(workers: usize, secs: f64, seed: u64, op: impl Fn(usize, u64) + Sync) -> TimedRun {
    let stop = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let hist = parking_lot::Mutex::new([0u64; HIST_BUCKETS]);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..workers {
            let (stop, total_ops, hist, op) = (&stop, &total_ops, &hist, &op);
            s.spawn(move || {
                pin_worker_rng(seed, t);
                let mut local = [0u64; HIST_BUCKETS];
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    op(t, i);
                    let ns = t0.elapsed().as_nanos() as u64;
                    local[obs::bucket_index(ns)] += 1;
                    i += 1;
                }
                total_ops.fetch_add(i, Ordering::Relaxed);
                let mut h = hist.lock();
                for (merged, l) in h.iter_mut().zip(local) {
                    *merged += l;
                }
            });
        }
        std::thread::sleep(Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
    });
    let counts = *hist.lock();
    TimedRun {
        ops: total_ops.into_inner(),
        elapsed_secs: start.elapsed().as_secs_f64().max(1e-9),
        latency: HistogramSnapshot { counts },
    }
}

/// A thread-safe sink for invariant violations observed during a run.
#[derive(Default)]
pub struct ViolationSink {
    violations: parking_lot::Mutex<Vec<String>>,
}

impl ViolationSink {
    /// An empty sink.
    pub fn new() -> ViolationSink {
        ViolationSink::default()
    }

    /// Record a violation.
    pub fn violate(&self, msg: String) {
        self.violations.lock().push(msg);
    }

    /// Record a violation unless `got == want`.
    pub fn check_eq<T: PartialEq + std::fmt::Debug>(&self, what: &str, got: T, want: T) {
        if got != want {
            self.violate(format!("{what}: got {got:?}, want {want:?}"));
        }
    }

    /// Consume the sink, yielding everything recorded.
    pub fn into_violations(self) -> Vec<String> {
        self.violations.into_inner()
    }
}
