//! The open-loop workload generator behind `txfix kv`.
//!
//! Stateless and seeded: op `i` of worker `w` under seed `s` is a pure
//! function of `(s, w, i)` and the config, so any slice of the stream
//! can be regenerated anywhere — the property the determinism harness
//! and the oracle tests lean on. The ingredients:
//!
//! * **Zipfian keys** with tunable `theta` ([`Zipfian`]), computed with
//!   the crate-local deterministic `ln`/`exp` (plain IEEE adds and
//!   multiplies only — no libm, so the sampled stream is bit-identical
//!   across platforms);
//! * **mixed op ratios** ([`Mix`], `get:put:delete:scan` weights);
//! * **bursty phases**: the first [`WorkloadCfg::burst_len`] ops of
//!   every [`WorkloadCfg::burst_period`] form a burst that skews hotter
//!   (higher effective theta) and more write-heavy;
//! * **a simulated-user session model**: ops belong to sessions of
//!   [`WorkloadCfg::session_len`] consecutive ops; each session is
//!   hashed to one of [`WorkloadCfg::users`] logical users (scaling to
//!   millions of users costs nothing — there is no per-user state), and
//!   a slice of each session's ops revisits that user's home key.

use txfix_stm::chaos::splitmix64;

// ---- deterministic float math --------------------------------------------
//
// `f64::powf` goes through libm, whose results differ across libc
// implementations. The Zipfian table must not: these `ln`/`exp` use only
// IEEE-exact operations (+, -, *, /, bit twiddling), which round
// identically on every conforming platform.

const LN_2: f64 = std::f64::consts::LN_2;

/// Natural log for finite `x > 0`, via exponent split plus the atanh
/// series on the mantissa.
fn det_ln(x: f64) -> f64 {
    debug_assert!(x > 0.0 && x.is_finite());
    let bits = x.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mantissa = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    // ln(m) = 2 atanh((m-1)/(m+1)); |t| <= 1/3 on m in [1, 2).
    let t = (mantissa - 1.0) / (mantissa + 1.0);
    let t2 = t * t;
    let mut term = t;
    let mut sum = 0.0;
    let mut k = 0u32;
    loop {
        let add = term / (2 * k + 1) as f64;
        sum += add;
        if add.abs() < 1e-18 {
            break;
        }
        term *= t2;
        k += 1;
    }
    exp as f64 * LN_2 + 2.0 * sum
}

/// `e^y` for moderate `y`, via power-of-two range reduction plus the
/// Taylor series.
fn det_exp(y: f64) -> f64 {
    debug_assert!(y.is_finite() && y.abs() < 700.0);
    let k = (y / LN_2).round();
    let r = y - k * LN_2;
    let mut term = 1.0;
    let mut sum = 1.0;
    let mut n = 1u32;
    loop {
        term *= r / n as f64;
        sum += term;
        if term.abs() < 1e-18 {
            break;
        }
        n += 1;
    }
    // 2^k assembled from bits (k is small here: |y| < 700 ⇒ |k| < 1011).
    sum * f64::from_bits(((1023 + k as i64) as u64) << 52)
}

/// `x^p` for `x > 0`.
fn det_pow(x: f64, p: f64) -> f64 {
    if p == 0.0 {
        1.0
    } else {
        det_exp(p * det_ln(x))
    }
}

fn unit(x: u64) -> f64 {
    // 53 high bits → [0, 1).
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

// ---- Zipfian --------------------------------------------------------------

/// A Zipfian sampler over ranks `0..n`: rank `r` is drawn with
/// probability proportional to `(r+1)^-theta`. `theta = 0` is uniform;
/// higher theta is more skewed.
pub struct Zipfian {
    cdf: Vec<f64>,
}

impl Zipfian {
    /// Precompute the CDF for `n` ranks at skew `theta`.
    pub fn new(n: usize, theta: f64) -> Zipfian {
        assert!(n >= 1 && (0.0..=8.0).contains(&theta), "unreasonable zipfian shape");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / det_pow((r + 1) as f64, theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipfian { cdf }
    }

    /// The rank for a uniform draw `u01` in `[0, 1)`.
    pub fn sample(&self, u01: f64) -> usize {
        self.cdf.partition_point(|&c| c <= u01).min(self.cdf.len() - 1)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Never empty (n >= 1).
    pub fn is_empty(&self) -> bool {
        false
    }
}

// ---- mix ------------------------------------------------------------------

/// Relative op weights, `get:put:delete:scan`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mix {
    /// Weight of point reads.
    pub get: u32,
    /// Weight of puts.
    pub put: u32,
    /// Weight of deletes.
    pub delete: u32,
    /// Weight of whole-shard scans.
    pub scan: u32,
}

impl Default for Mix {
    fn default() -> Mix {
        Mix { get: 80, put: 15, delete: 3, scan: 2 }
    }
}

impl Mix {
    /// Parse `"80:15:3:2"`. At least one weight must be positive.
    pub fn parse(s: &str) -> Option<Mix> {
        let parts: Vec<u32> = s.split(':').map(|p| p.parse().ok()).collect::<Option<_>>()?;
        match parts.as_slice() {
            [g, p, d, sc] if g + p + d + sc > 0 => {
                Some(Mix { get: *g, put: *p, delete: *d, scan: *sc })
            }
            _ => None,
        }
    }

    /// Inverse of [`parse`](Mix::parse).
    pub fn name(&self) -> String {
        format!("{}:{}:{}:{}", self.get, self.put, self.delete, self.scan)
    }

    fn total(&self) -> u64 {
        (self.get + self.put + self.delete + self.scan) as u64
    }

    /// The burst-phase variant: writes weigh triple.
    fn burst(&self) -> Mix {
        Mix { get: self.get, put: self.put * 3, delete: self.delete * 3, scan: self.scan }
    }
}

// ---- the generator --------------------------------------------------------

/// Workload shape.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadCfg {
    /// Key-space size (key `k<rank>`; rank 0 is hottest).
    pub keys: u64,
    /// Logical user population sessions hash into.
    pub users: u64,
    /// Zipfian skew over keys.
    pub theta: f64,
    /// Op-type weights.
    pub mix: Mix,
    /// Consecutive ops per user session.
    pub session_len: u64,
    /// Ops per burst cycle.
    pub burst_period: u64,
    /// Burst ops at the head of each cycle (hotter and write-heavier).
    pub burst_len: u64,
}

impl Default for WorkloadCfg {
    fn default() -> WorkloadCfg {
        WorkloadCfg {
            keys: 256,
            users: 1_000_000,
            theta: 0.9,
            mix: Mix::default(),
            session_len: 8,
            burst_period: 64,
            burst_len: 16,
        }
    }
}

/// One generated op. `Scan` carries a draw the driver maps onto a shard
/// (the generator does not know the shard count).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkloadOp {
    /// Point read.
    Get(String),
    /// Put; the value encodes user, worker and index, so lost updates
    /// are attributable.
    Put(String, String),
    /// Delete.
    Delete(String),
    /// Whole-shard scan; the driver picks shard `draw % shards`.
    Scan(u64),
}

/// The seeded open-loop generator.
pub struct Workload {
    cfg: WorkloadCfg,
    zipf: Zipfian,
    zipf_burst: Zipfian,
    mix_burst: Mix,
}

impl Workload {
    /// Precompute the samplers for `cfg`.
    pub fn new(cfg: WorkloadCfg) -> Workload {
        assert!(cfg.keys >= 1 && cfg.users >= 1 && cfg.session_len >= 1);
        assert!(cfg.burst_period >= 1 && cfg.burst_len <= cfg.burst_period);
        Workload {
            cfg,
            zipf: Zipfian::new(cfg.keys as usize, cfg.theta),
            // Bursts concentrate: effectively hotter keyspace.
            zipf_burst: Zipfian::new(cfg.keys as usize, cfg.theta + 0.4),
            mix_burst: cfg.mix.burst(),
        }
    }

    /// The config in force.
    pub fn cfg(&self) -> &WorkloadCfg {
        &self.cfg
    }

    /// Whether op `i` of any worker falls in a burst phase.
    pub fn in_burst(&self, i: u64) -> bool {
        i % self.cfg.burst_period < self.cfg.burst_len
    }

    /// The logical user behind op `i` of `worker` under `seed`.
    pub fn user_of(&self, seed: u64, worker: u64, i: u64) -> u64 {
        let session = i / self.cfg.session_len;
        splitmix64(seed ^ splitmix64(worker.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ session))
            % self.cfg.users
    }

    /// Op `i` of `worker` under `seed` — pure in all three.
    pub fn op(&self, seed: u64, worker: u64, i: u64) -> WorkloadOp {
        let h = splitmix64(
            seed ^ splitmix64(
                worker.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i.wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
            ),
        );
        let burst = self.in_burst(i);
        let mix = if burst { &self.mix_burst } else { &self.cfg.mix };
        let user = self.user_of(seed, worker, i);
        // Key choice: mostly Zipfian (hotter during bursts); one op in
        // four revisits the session user's home key.
        let rank = if splitmix64(h ^ 0x005E_5510).is_multiple_of(4) {
            splitmix64(user ^ 0x40FE) % self.cfg.keys
        } else {
            let u01 = unit(splitmix64(h ^ 0x21BF));
            let z = if burst { &self.zipf_burst } else { &self.zipf };
            z.sample(u01) as u64
        };
        let key = format!("k{rank}");
        let mut roll = splitmix64(h ^ 0x3015) % mix.total();
        if roll < mix.get as u64 {
            return WorkloadOp::Get(key);
        }
        roll -= mix.get as u64;
        if roll < mix.put as u64 {
            return WorkloadOp::Put(key, format!("u{user}_w{worker}_{i}"));
        }
        roll -= mix.put as u64;
        if roll < mix.delete as u64 {
            return WorkloadOp::Delete(key);
        }
        WorkloadOp::Scan(splitmix64(h ^ 0x5CA2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_math_matches_libm_closely() {
        for x in [1.0e-6, 0.3, 1.0, 2.0, 10.0, 12345.678] {
            assert!((det_ln(x) - x.ln()).abs() <= 1e-12 * x.ln().abs().max(1.0), "{x}");
        }
        for y in [-20.0, -1.0, 0.0, 0.5, 1.0, 30.0] {
            assert!((det_exp(y) - y.exp()).abs() <= 1e-12 * y.exp(), "{y}");
        }
        assert_eq!(det_pow(7.0, 0.0), 1.0);
        assert!((det_pow(2.0, 10.0) - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn zipfian_theta_zero_is_uniform_and_cdf_is_monotone() {
        let z = Zipfian::new(16, 0.0);
        assert_eq!(z.sample(0.0), 0);
        assert_eq!(z.sample(0.999), 15);
        assert_eq!(z.sample(0.5), 8);
        let z = Zipfian::new(64, 1.2);
        let mut last = 0;
        for i in 0..1000 {
            let r = z.sample(i as f64 / 1000.0);
            assert!(r >= last, "cdf sampling must be monotone");
            last = r;
        }
    }

    #[test]
    fn mix_parses_and_round_trips() {
        let m = Mix::parse("80:15:3:2").unwrap();
        assert_eq!(m, Mix::default());
        assert_eq!(Mix::parse(&m.name()), Some(m));
        assert_eq!(Mix::parse("0:0:0:0"), None);
        assert_eq!(Mix::parse("1:2:3"), None);
        assert_eq!(Mix::parse("a:2:3:4"), None);
    }
}
