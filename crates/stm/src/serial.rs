//! The global serialization lock backing irrevocable (inevitable)
//! transactions.
//!
//! Like Intel's STM (paper §5.1), a transaction that must perform an
//! operation with un-undoable side effects "reverts to a global lock":
//! it acquires this lock exclusively, which drains and then excludes all
//! concurrent commits, making the transaction's reads stable and its commit
//! infallible. Ordinary commits hold the lock in shared mode only for the
//! duration of the commit protocol, so revocable transactions continue to
//! run and commit concurrently with each other.
//!
//! ## Why not an `RwLock`
//!
//! Every commit takes the shared side, so this is the single hottest lock
//! in the system, and a reader-writer lock funnels all those acquisitions
//! through one atomic word — exactly the kind of all-threads cache-line
//! ping-pong the commit-path overhaul removes. The shape here is a
//! *big-reader* (brlock) / read-indicator lock: readers count themselves
//! in one of [`SLOTS`] cache-line-padded slots (chosen per thread, so the
//! common case touches a line no other core writes), then check the writer
//! flag; the rare exclusive side raises the flag and sweeps every slot to
//! zero. Readers that lose the race to a writer park on a mutex/condvar
//! pair, so irrevocable sections still block rather than burn CPU.

use parking_lot::{Condvar, Mutex, MutexGuard};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Number of reader-indicator slots; threads map onto them round-robin.
/// More slots than cores on any expected host, so concurrent committers
/// rarely share one.
const SLOTS: usize = 32;

#[repr(align(64))]
struct Slot(AtomicU64);

#[allow(clippy::declare_interior_mutable_const)]
const SLOT_INIT: Slot = Slot(AtomicU64::new(0));

static READERS: [Slot; SLOTS] = [SLOT_INIT; SLOTS];

/// Raised while an exclusive holder is active (or draining readers).
static WRITER_ACTIVE: AtomicBool = AtomicBool::new(false);

/// Serializes exclusive acquirers against each other.
static WRITER_GATE: Mutex<()> = Mutex::new(());

/// Park bench for readers that arrive while a writer is active.
static PARK_LOCK: Mutex<()> = Mutex::new(());
static PARK_CV: Condvar = Condvar::new();

static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[inline]
fn my_slot() -> &'static Slot {
    let idx = MY_SLOT.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_SLOT.fetch_add(1, Ordering::Relaxed) % SLOTS;
        s.set(v);
        v
    });
    &READERS[idx]
}

/// Shared guard held by ordinary commits while they publish values.
pub(crate) struct SharedGuard {
    slot: &'static Slot,
}

impl Drop for SharedGuard {
    #[inline]
    fn drop(&mut self) {
        self.slot.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Exclusive guard held by an irrevocable transaction from the moment it
/// becomes inevitable until its commit completes.
pub(crate) struct ExclusiveGuard {
    _gate: MutexGuard<'static, ()>,
}

impl Drop for ExclusiveGuard {
    fn drop(&mut self) {
        WRITER_ACTIVE.store(false, Ordering::SeqCst);
        // Order the flag clear before the wakeup relative to parked
        // readers' re-check: taking and dropping the park lock means any
        // reader that saw the flag set is either already waiting (gets
        // the notify) or has not yet locked (will see the flag clear).
        drop(PARK_LOCK.lock());
        PARK_CV.notify_all();
    }
}

/// Acquire the lock in shared mode (ordinary commits, direct stores).
#[inline]
pub(crate) fn shared() -> SharedGuard {
    let slot = my_slot();
    loop {
        // Announce first, then check: the Dekker pair with `exclusive`'s
        // flag-store/slot-sweep. SeqCst on both sides so either the writer
        // sees our count or we see its flag.
        slot.0.fetch_add(1, Ordering::SeqCst);
        if !WRITER_ACTIVE.load(Ordering::SeqCst) {
            return SharedGuard { slot };
        }
        // Lost to a writer: back out so its sweep can finish, then park.
        slot.0.fetch_sub(1, Ordering::SeqCst);
        let mut g = PARK_LOCK.lock();
        while WRITER_ACTIVE.load(Ordering::SeqCst) {
            PARK_CV.wait(&mut g);
        }
    }
}

/// Try to acquire the lock in shared mode without blocking.
///
/// Used by eager commits, which already hold orec stripes from encounter
/// time: parking here while an irrevocable transaction holds the lock
/// exclusively could deadlock against its publication waiting on those
/// stripes, so the caller aborts (releasing the stripes) instead.
#[inline]
pub(crate) fn try_shared() -> Option<SharedGuard> {
    let slot = my_slot();
    slot.0.fetch_add(1, Ordering::SeqCst);
    if !WRITER_ACTIVE.load(Ordering::SeqCst) {
        return Some(SharedGuard { slot });
    }
    slot.0.fetch_sub(1, Ordering::SeqCst);
    None
}

/// Acquire the lock exclusively (irrevocable transactions, quiescent
/// snapshots).
pub(crate) fn exclusive() -> ExclusiveGuard {
    let gate = WRITER_GATE.lock();
    WRITER_ACTIVE.store(true, Ordering::SeqCst);
    for slot in &READERS {
        let mut spins = 0u32;
        while slot.0.load(Ordering::SeqCst) != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                // Shared sections are short (one commit's publication),
                // but yield rather than burn a core on oversubscribed
                // hosts.
                std::thread::yield_now();
            }
        }
    }
    ExclusiveGuard { _gate: gate }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    #[test]
    fn exclusive_blocks_shared() {
        let g = exclusive();
        let entered = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                let _r = shared();
                entered.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(30));
            assert!(!entered.load(Ordering::SeqCst));
            drop(g);
            // Give the reader time to get the lock.
            for _ in 0..1000 {
                if entered.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            assert!(entered.load(Ordering::SeqCst));
        });
    }

    #[test]
    fn shared_blocks_exclusive_until_released() {
        let r = shared();
        let entered = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                let _w = exclusive();
                entered.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(30));
            assert!(!entered.load(Ordering::SeqCst), "writer entered past a live reader");
            drop(r);
            for _ in 0..1000 {
                if entered.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            assert!(entered.load(Ordering::SeqCst));
        });
    }

    #[test]
    fn shared_guards_coexist() {
        let _a = shared();
        let _b = shared();
    }

    #[test]
    fn contended_readers_and_writers_make_progress() {
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    while !done.load(Ordering::Relaxed) {
                        drop(shared());
                    }
                });
            }
            for _ in 0..20 {
                drop(exclusive());
            }
            done.store(true, Ordering::Relaxed);
        });
    }
}
