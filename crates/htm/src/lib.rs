//! # txfix-htm: a best-effort hardware TM model with hybrid fallback
//!
//! The paper's §5.4.1 shows that the SpiderMonkey Recipe 1 fix is too slow
//! on software TM (21% of developer-fix performance) but reaches 99.3% on
//! the simulated LogTM-SE hardware TM. We have no TM hardware, so this
//! crate *models* it on top of `txfix-stm`:
//!
//! - hardware transactions track accesses at near-zero cost
//!   ([`OverheadModel::HARDWARE_TM`]) but have **bounded capacity**: a
//!   transaction reading or writing more distinct locations than the
//!   configured bound aborts with a capacity overflow, like any best-effort
//!   HTM;
//! - a [`FallbackPolicy`] decides what happens after repeated hardware
//!   failures: retry in software TM (the hybrid-TM design the paper cites
//!   [10, 13, 29]) or serialize under the global lock.
//!
//! [`OverheadModel::HARDWARE_TM`]: txfix_stm::OverheadModel::HARDWARE_TM

#![warn(missing_docs)]

use txfix_stm::{OverheadModel, StmResult, Txn, TxnError, TxnReport};

/// Capacity and cost parameters of the modelled hardware.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HtmConfig {
    /// Maximum distinct locations a hardware transaction may read
    /// (e.g. L1-sized read signatures).
    pub read_capacity: usize,
    /// Maximum distinct locations it may write.
    pub write_capacity: usize,
    /// Hardware attempts before engaging the fallback policy (covers
    /// transient conflict aborts as well as capacity overflows).
    pub max_hw_attempts: u64,
    /// Per-access cost model of the hardware path.
    pub overhead: OverheadModel,
    /// What to do when hardware gives up.
    pub fallback: FallbackPolicy,
}

impl Default for HtmConfig {
    fn default() -> Self {
        HtmConfig {
            read_capacity: 1024,
            write_capacity: 256,
            max_hw_attempts: 4,
            overhead: OverheadModel::HARDWARE_TM,
            fallback: FallbackPolicy::SoftwareTm(OverheadModel::NONE),
        }
    }
}

impl HtmConfig {
    /// Default configuration.
    pub fn new() -> HtmConfig {
        HtmConfig::default()
    }

    /// Set the read/write capacity bounds.
    pub fn capacity(mut self, reads: usize, writes: usize) -> Self {
        self.read_capacity = reads;
        self.write_capacity = writes;
        self
    }

    /// Set the number of hardware attempts before fallback.
    pub fn max_hw_attempts(mut self, n: u64) -> Self {
        self.max_hw_attempts = n.max(1);
        self
    }

    /// Set the fallback policy.
    pub fn fallback(mut self, policy: FallbackPolicy) -> Self {
        self.fallback = policy;
        self
    }
}

/// Software path taken when the hardware gives up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FallbackPolicy {
    /// Re-run as an unbounded software transaction with the given
    /// (software) overhead model — the hybrid-TM design.
    SoftwareTm(OverheadModel),
    /// Re-run serialized under the global lock (irrevocable), like an STM
    /// that falls back to a single global lock.
    GlobalLock,
    /// Surface the failure to the caller.
    Fail,
}

/// How a [`hybrid_atomic`] call ultimately committed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitPath {
    /// Committed on the modelled hardware.
    Hardware,
    /// Fell back to software TM.
    SoftwareFallback,
    /// Fell back to global-lock serialization.
    GlobalLockFallback,
}

/// Outcome details of a hybrid transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HybridReport {
    /// Which path committed.
    pub path: CommitPath,
    /// Hardware attempts performed (0 if the body never ran in hardware).
    pub hw_attempts: u64,
    /// Report of the committing execution.
    pub inner: TxnReport,
}

/// Execute `body` as a hardware transaction, falling back per
/// `config.fallback` when capacity or contention defeats the hardware.
///
/// # Errors
///
/// - [`TxnError::Capacity`]/[`TxnError::RetryLimit`] with
///   [`FallbackPolicy::Fail`];
/// - [`TxnError::Cancelled`] if the body cancels on any path.
///
/// # Examples
///
/// ```
/// use txfix_htm::{hybrid_atomic, CommitPath, HtmConfig};
/// use txfix_stm::TVar;
///
/// let v = TVar::new(0u32);
/// let (_, report) = hybrid_atomic(&HtmConfig::new(), |txn| v.modify(txn, |x| x + 1)).unwrap();
/// assert_eq!(report.path, CommitPath::Hardware);
/// assert_eq!(v.load(), 1);
/// ```
pub fn hybrid_atomic<T>(
    config: &HtmConfig,
    mut body: impl FnMut(&mut Txn) -> StmResult<T>,
) -> Result<(T, HybridReport), TxnError> {
    let hw = Txn::build()
        .site("htm_hw")
        .capacity(config.read_capacity, config.write_capacity)
        .max_attempts(config.max_hw_attempts)
        .overhead(config.overhead);

    let hw_attempts;
    match hw.try_run(&mut body) {
        Ok((v, inner)) => {
            return Ok((
                v,
                HybridReport { path: CommitPath::Hardware, hw_attempts: inner.attempts, inner },
            ))
        }
        Err(TxnError::Cancelled) => return Err(TxnError::Cancelled),
        Err(TxnError::Capacity { attempts, .. }) => hw_attempts = attempts,
        Err(TxnError::RetryLimit { attempts }) => hw_attempts = attempts,
    }

    match config.fallback {
        FallbackPolicy::Fail => {
            // Re-run once more in hardware so the caller sees the real
            // terminal failure kind (capacity vs. retry limit).
            match hw.clone().max_attempts(1).try_run(&mut body) {
                Ok((v, inner)) => {
                    Ok((v, HybridReport { path: CommitPath::Hardware, hw_attempts, inner }))
                }
                Err(e) => Err(e),
            }
        }
        FallbackPolicy::SoftwareTm(overhead) => {
            let (v, inner) =
                Txn::build().site("htm_sw_fallback").overhead(overhead).try_run(&mut body)?;
            Ok((v, HybridReport { path: CommitPath::SoftwareFallback, hw_attempts, inner }))
        }
        FallbackPolicy::GlobalLock => {
            let (v, inner) = Txn::build().site("htm_lock_fallback").relaxed().try_run(|txn| {
                txn.become_irrevocable()?;
                body(txn)
            })?;
            Ok((v, HybridReport { path: CommitPath::GlobalLockFallback, hw_attempts, inner }))
        }
    }
}

/// Convenience: hybrid transaction with the default configuration,
/// panicking on cancellation (mirrors [`txfix_stm::atomic`]).
pub fn htm_atomic<T>(body: impl FnMut(&mut Txn) -> StmResult<T>) -> T {
    hybrid_atomic(&HtmConfig::default(), body)
        .expect("default hybrid transaction cannot fail terminally")
        .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use txfix_stm::TVar;

    #[test]
    fn small_transaction_commits_in_hardware() {
        let v = TVar::new(1u32);
        let (out, report) =
            hybrid_atomic(&HtmConfig::new(), |txn| v.modify(txn, |x| x * 3).map(|_| 3)).unwrap();
        assert_eq!(out, 3);
        assert_eq!(report.path, CommitPath::Hardware);
        assert_eq!(v.load(), 3);
    }

    #[test]
    fn capacity_overflow_falls_back_to_software() {
        let vars: Vec<TVar<u32>> = (0..32u32).map(TVar::new).collect();
        let cfg = HtmConfig::new().capacity(8, 8);
        let (sum, report) = hybrid_atomic(&cfg, |txn| {
            let mut s = 0;
            for v in &vars {
                s += v.read(txn)?;
            }
            Ok(s)
        })
        .unwrap();
        assert_eq!(sum, (0..32).sum::<u32>());
        assert_eq!(report.path, CommitPath::SoftwareFallback);
        assert!(report.hw_attempts >= 1);
    }

    #[test]
    fn capacity_overflow_with_global_lock_fallback() {
        let vars: Vec<TVar<u32>> = (0..32).map(|_| TVar::new(1)).collect();
        let cfg = HtmConfig::new().capacity(4, 4).fallback(FallbackPolicy::GlobalLock);
        let (sum, report) = hybrid_atomic(&cfg, |txn| {
            let mut s = 0;
            for v in &vars {
                s += v.read(txn)?;
            }
            Ok(s)
        })
        .unwrap();
        assert_eq!(sum, 32);
        assert_eq!(report.path, CommitPath::GlobalLockFallback);
        assert!(report.inner.committed_irrevocably);
    }

    #[test]
    fn fail_policy_surfaces_capacity_error() {
        let vars: Vec<TVar<u32>> = (0..32).map(|_| TVar::new(1)).collect();
        let cfg = HtmConfig::new().capacity(4, 4).fallback(FallbackPolicy::Fail);
        let r = hybrid_atomic(&cfg, |txn| {
            for v in &vars {
                v.read(txn)?;
            }
            Ok(())
        });
        assert!(matches!(r, Err(TxnError::Capacity { .. })), "got {r:?}");
    }

    #[test]
    fn hybrid_counter_is_exact_under_contention() {
        let v = TVar::new(0u64);
        let cfg = HtmConfig::new().capacity(64, 64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let v = v.clone();
                s.spawn(move || {
                    for _ in 0..250 {
                        hybrid_atomic(&cfg, |txn| v.modify(txn, |x| x + 1)).unwrap();
                    }
                });
            }
        });
        assert_eq!(v.load(), 1000);
    }

    #[test]
    fn htm_atomic_convenience_works() {
        let v = TVar::new(0u32);
        htm_atomic(|txn| v.write(txn, 9));
        assert_eq!(v.load(), 9);
    }

    #[test]
    fn config_builder_roundtrip() {
        let c = HtmConfig::new()
            .capacity(10, 20)
            .max_hw_attempts(7)
            .fallback(FallbackPolicy::GlobalLock);
        assert_eq!(c.read_capacity, 10);
        assert_eq!(c.write_capacity, 20);
        assert_eq!(c.max_hw_attempts, 7);
        assert_eq!(c.fallback, FallbackPolicy::GlobalLock);
    }
}
