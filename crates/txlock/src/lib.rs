//! # txfix-txlock: revocable locks and deadlock detection
//!
//! Reproduction of the **TxLocks** mechanism the paper builds Recipe 3 on
//! (§4.1 "Preemptible resources", §5.1): mutual-exclusion locks that can be
//! acquired *inside* a memory transaction, are held until the transaction
//! commits, and are **released automatically if the transaction aborts**.
//! A global wait-for graph detects deadlock "both among locks and between
//! locks and transactions, and will abort the transaction if deadlock
//! occurs".
//!
//! Two ingredients:
//!
//! - [`TxMutex`]: the lock itself. Non-transactional use gives an ordinary
//!   mutex whose blocked acquisitions *detect* circular waits (returning
//!   [`DeadlockError`] instead of hanging — how the corpus demonstrates
//!   buggy code safely). Transactional use ([`TxMutex::lock_tx`] /
//!   [`TxMutex::with_tx`]) gives the revocable TxLock discipline.
//! - [`LockCondvar`]: a conventional condition variable for
//!   `TxMutex`-protected state, used by buggy code and developer fixes.
//!
//! The wait-for graph's transaction registry is exposed via
//! [`register_txn_thread`] / [`unregister_txn_thread`] so the Recipe 3
//! combinator in `txfix-core` can mark a thread's transaction as the
//! preferred (low-priority) deadlock victim.
//!
//! ## Example: a revocable lock inside a transaction
//!
//! ```
//! use std::sync::Arc;
//! use txfix_stm::atomic;
//! use txfix_txlock::TxMutex;
//!
//! let account = Arc::new(TxMutex::new("account", 100i64));
//! let a = account.clone();
//! // Inside a transaction the lock is revocable: if this transaction ever
//! // deadlocked, it would abort, release the lock, back off and re-run.
//! atomic(move |txn| a.with_tx(txn, |balance| *balance -= 30));
//! assert_eq!(*account.lock().unwrap(), 70);
//! ```

#![warn(missing_docs)]

mod condvar;
mod error;
mod graph;
pub mod lockdep;
mod mutex;
mod thread_id;

pub use condvar::{LockCondvar, WaitOutcome};
pub use error::DeadlockError;
pub use graph::{
    blocked_thread_count, register_txn_thread, register_txn_thread_if_new, unregister_txn_thread,
    LockId,
};
pub use mutex::{enlist_preemptible, TxMutex, TxMutexGuard};
pub use thread_id::{current as current_thread, ThreadToken};
