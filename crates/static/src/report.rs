//! Static findings and the `txfix lint` report, with the same JSON
//! treatment as the dynamic analyzer's reports ([`ToJson`] over
//! [`txfix_core::json`]).

use crate::synth::Verification;
use txfix_core::json::{get, Json, ToJson};
use txfix_core::Recipe;

// The hazard vocabulary moved to `txfix_core::finding` so the dynamic
// analyzer and the region-inference pipeline share it; re-exported here
// so `txfix_static::report::Hazard` keeps working.
pub use txfix_core::finding::{hazard_from_json, Hazard};

/// One static finding: a hazard and the account of how it was derived.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// What was detected.
    pub hazard: Hazard,
    /// Human-readable account of the derivation.
    pub explanation: String,
}

/// One lint finding: a hazard plus the synthesized fixes and their
/// static verification results.
#[derive(Clone, Debug, PartialEq)]
pub struct LintFinding {
    /// What was detected.
    pub hazard: Hazard,
    /// Human-readable account of the derivation.
    pub explanation: String,
    /// The candidate recipes, each applied to the summary and re-checked
    /// (primary recipe first).
    pub fixes: Vec<Verification>,
}

impl LintFinding {
    /// Whether at least one synthesized fix statically verifies.
    pub fn has_verified_fix(&self) -> bool {
        self.fixes.iter().any(|v| v.verified)
    }
}

/// The result of linting one scenario-variant summary.
#[derive(Clone, Debug, PartialEq)]
pub struct LintReport {
    /// The scenario key.
    pub scenario: String,
    /// Which variant was linted (`buggy`, `dev`, `tm`).
    pub variant: String,
    /// How many concurrent paths the summary models.
    pub paths: usize,
    /// Everything the static passes detected.
    pub findings: Vec<LintFinding>,
}

impl LintReport {
    /// Whether the passes found anything.
    pub fn has_findings(&self) -> bool {
        !self.findings.is_empty()
    }

    /// Parse a report back from [`ToJson::to_json`] output.
    ///
    /// # Errors
    ///
    /// A description of the first malformed construct.
    pub fn from_json(input: &str) -> Result<LintReport, String> {
        let v = Json::parse(input)?;
        let obj = v.object("lint report")?;
        let findings = get(obj, "findings")?
            .array("findings")?
            .iter()
            .map(finding_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(LintReport {
            scenario: get(obj, "scenario")?.string("scenario")?,
            variant: get(obj, "variant")?.string("variant")?,
            paths: get(obj, "paths")?.number("paths")? as usize,
            findings,
        })
    }
}

impl ToJson for LintReport {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("scenario", Json::str(self.scenario.clone())),
            ("variant", Json::str(self.variant.clone())),
            ("paths", Json::int(self.paths as u64)),
            ("findings", Json::list(self.findings.iter().map(ToJson::to_json_value))),
        ])
    }
}

impl ToJson for LintFinding {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("hazard", self.hazard.to_json_value()),
            ("explanation", Json::str(self.explanation.clone())),
            ("fixes", Json::list(self.fixes.iter().map(ToJson::to_json_value))),
        ])
    }
}

fn finding_from_json(v: &Json) -> Result<LintFinding, String> {
    let obj = v.object("finding")?;
    let fixes = get(obj, "fixes")?
        .array("fixes")?
        .iter()
        .map(fix_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(LintFinding {
        hazard: hazard_from_json(get(obj, "hazard")?)?,
        explanation: get(obj, "explanation")?.string("explanation")?,
        fixes,
    })
}

impl ToJson for Verification {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("recipe", Json::str(self.recipe.slug())),
            ("verified", Json::Bool(self.verified)),
            ("residual", Json::strings(&self.residual)),
            ("introduced", Json::strings(&self.introduced)),
        ])
    }
}

fn fix_from_json(v: &Json) -> Result<Verification, String> {
    let obj = v.object("fix")?;
    let strings = |key: &str| -> Result<Vec<String>, String> {
        get(obj, key)?.array(key)?.iter().map(|s| s.string(key)).collect::<Result<Vec<_>, _>>()
    };
    Ok(Verification {
        recipe: Recipe::from_slug(&get(obj, "recipe")?.string("recipe")?)?,
        verified: get(obj, "verified")?.bool("verified")?,
        residual: strings("residual")?,
        introduced: strings("introduced")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> LintReport {
        LintReport {
            scenario: "av_wrong_lock".into(),
            variant: "buggy".into(),
            paths: 2,
            findings: vec![
                LintFinding {
                    hazard: Hazard::Race { loc: "m133773.cache_count".into() },
                    explanation: "paths reach it with disjoint locksets \"quoted\"\n".into(),
                    fixes: vec![
                        Verification {
                            recipe: Recipe::WrapAll,
                            verified: true,
                            residual: vec![],
                            introduced: vec![],
                        },
                        Verification {
                            recipe: Recipe::WrapUnprotected,
                            verified: false,
                            residual: vec!["possible data race on x".into()],
                            introduced: vec!["lock-order cycle through a -> b".into()],
                        },
                    ],
                },
                LintFinding {
                    hazard: Hazard::LockCycle { locks: vec!["a".into(), "b".into()] },
                    explanation: "both orders".into(),
                    fixes: vec![],
                },
                LintFinding {
                    hazard: Hazard::WaitCycle { cv: "cv".into(), lock: "l".into() },
                    explanation: "".into(),
                    fixes: vec![],
                },
                LintFinding {
                    hazard: Hazard::LostWakeup { cv: "cv".into(), loc: "x".into() },
                    explanation: "".into(),
                    fixes: vec![],
                },
                LintFinding {
                    hazard: Hazard::Atomicity { locs: vec!["x".into(), "y".into()] },
                    explanation: "".into(),
                    fixes: vec![],
                },
            ],
        }
    }

    #[test]
    fn lint_reports_round_trip_through_json() {
        let r = sample_report();
        let parsed = LintReport::from_json(&r.to_json()).expect("round trip");
        assert_eq!(parsed, r);
        assert!(parsed.has_findings());
        assert!(parsed.findings[0].has_verified_fix());
        assert!(!parsed.findings[1].has_verified_fix());
    }

    #[test]
    fn empty_report_round_trips() {
        let r =
            LintReport { scenario: "x".into(), variant: "tm".into(), paths: 3, findings: vec![] };
        let parsed = LintReport::from_json(&r.to_json()).expect("round trip");
        assert_eq!(parsed, r);
        assert!(!parsed.has_findings());
    }

    #[test]
    fn malformed_lint_json_is_rejected() {
        assert!(LintReport::from_json("{").is_err());
        assert!(LintReport::from_json(r#"{"scenario":"x"}"#).is_err());
        assert!(LintReport::from_json(
            r#"{"scenario":"x","variant":"buggy","paths":1,"findings":[{"hazard":{"kind":"nope"},"explanation":"","fixes":[]}]}"#
        )
        .is_err());
    }
}
