//! Differential test: the store versus a sequential `BTreeMap` oracle.
//!
//! Concurrent workers run mixed get/put/delete/scan histories against a
//! [`KvStore`] under the deterministic scheduler; every committed op
//! records the shard version at its serialization point. The
//! [`model::check_history`] checker replays that serialization order
//! against the oracle and rejects stale reads, lost/duplicated updates,
//! diverged displaced values and torn scans. Each mode runs one hundred
//! seeded histories (different seed → different schedule *and* different
//! op stream), plus a proptest layer over arbitrary seeds.

use proptest::prelude::*;
use txfix_kvstore::model::{self, Event, ModelOp, ModelResult};
use txfix_kvstore::{KvConfig, KvStore, Mode};
use txfix_stm::chaos::splitmix64;
use txfix_stm::sched;
use txfix_xcall::SimFs;

const KEYS: [&str; 8] = ["k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"];
const THREADS: usize = 3;
const OPS_PER_THREAD: u64 = 14;
const MAX_STEPS: u64 = 5_000_000;

/// Run one seeded concurrent history on a fresh store and return the
/// committed events (checking happens outside the scheduler run).
fn one_history(mode: Mode, seed: u64) -> Vec<Event> {
    let fs = SimFs::new();
    let store = KvStore::open(&fs, KvConfig::new(mode, 2));
    let kv = &store;
    let workers: Vec<Box<dyn FnOnce() -> Vec<Event> + Send + '_>> = (0..THREADS as u64)
        .map(|w| {
            Box::new(move || {
                let mut events = Vec::new();
                let mut h = splitmix64(seed ^ w.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                for i in 0..OPS_PER_THREAD {
                    h = splitmix64(h);
                    let key = KEYS[(h % KEYS.len() as u64) as usize];
                    let kind = splitmix64(h ^ i) % 10;
                    let (op, result, stats) = if kind < 4 {
                        let r = kv.get(key).unwrap();
                        (ModelOp::Get(key.into()), ModelResult::Value(r.value), r.stats)
                    } else if kind < 8 {
                        let val = format!("v{w}_{i}");
                        let r = kv.put(key, &val).unwrap();
                        (ModelOp::Put(key.into(), val), ModelResult::Value(r.value), r.stats)
                    } else if kind < 9 {
                        let r = kv.delete(key).unwrap();
                        (ModelOp::Delete(key.into()), ModelResult::Value(r.value), r.stats)
                    } else {
                        let shard = (splitmix64(h ^ 0x5CA2) % 2) as usize;
                        let r = kv.scan(shard).unwrap();
                        (ModelOp::Scan, ModelResult::Snapshot(r.value), r.stats)
                    };
                    events.push(Event { shard: stats.shard, version: stats.version, op, result });
                }
                events
            }) as Box<dyn FnOnce() -> Vec<Event> + Send + '_>
        })
        .collect();
    let (outs, log) = model::run_workers(seed, MAX_STEPS, workers);
    assert!(
        log.stop.is_none(),
        "{} seed {seed}: schedule stopped early: {:?}",
        mode.name(),
        log.stop
    );
    outs.into_iter().flat_map(|o| o.expect("no worker may die")).collect()
}

fn run_seeds(mode: Mode, seeds: impl Iterator<Item = u64>) {
    sched::run_exclusively(|| {
        for seed in seeds {
            let events = one_history(mode, seed);
            assert_eq!(events.len(), THREADS * OPS_PER_THREAD as usize);
            if let Err(divergence) = model::check_history(&events) {
                panic!("{} seed {seed}: {divergence}", mode.name());
            }
        }
    });
}

#[test]
fn dev_mode_is_linearizable_over_100_seeded_histories() {
    run_seeds(Mode::Dev, 0..100);
}

#[test]
fn tm_mode_is_linearizable_over_100_seeded_histories() {
    run_seeds(Mode::Tm, 1000..1100);
}

#[test]
fn hybrid_mode_is_linearizable_over_100_seeded_histories() {
    run_seeds(Mode::Hybrid, 2000..2100);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary seeds (arbitrary schedules and op streams) stay
    /// linearizable in every mode.
    #[test]
    fn any_seed_is_linearizable_in_every_mode(seed in any::<u64>()) {
        for mode in Mode::ALL {
            run_seeds(mode, std::iter::once(seed));
        }
    }
}
