//! The ownership (title-locking) protocol — buggy and developer-fixed.
//!
//! Per paper §5.4.1: "SpiderMonkey developers employed this mechanism
//! because most objects are only ever locked by a single thread": the
//! owner's fast path is a single atomic compare, with a slow *claim*
//! handshake for contended objects. The deadlock occurs when a thread
//! holding `setSlotLock` claims an object whose owner is blocked behind
//! `setSlotLock`.

use super::store::ObjectStore;
use parking_lot::{Condvar, Mutex};
use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use txfix_stm::trace;
use txfix_txlock::TxMutex;

/// Buggy protocol or the developers' fix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OwnershipMode {
    /// As shipped: claim objects while holding `setSlotLock` → deadlock.
    Buggy,
    /// Developers' fix: drop all owned titles before blocking on
    /// `setSlotLock` (plus the claim/release condition variable), at the
    /// cost of re-acquiring ownership afterwards.
    DevFix,
}

/// Per-object title: exclusive thread ownership with a claim handshake.
struct Title {
    /// Owning thread index + 1; 0 when unowned.
    owner: AtomicU64,
    /// Number of threads waiting to claim.
    wanted: AtomicU64,
    m: Mutex<()>,
    cv: Condvar,
    /// Trace identity: the title is a lock, and recording its
    /// acquire/release lets the trace analyzers see the claim-while-holding
    /// cycle that the lock-only live validator cannot (titles are not
    /// `TxMutex`es).
    trace_id: u64,
}

impl Title {
    fn new() -> Title {
        Title {
            owner: AtomicU64::new(0),
            wanted: AtomicU64::new(0),
            m: Mutex::new(()),
            cv: Condvar::new(),
            trace_id: trace::next_object_id(),
        }
    }

    /// Fast path: already owner, or object unowned and we can take it.
    #[inline]
    fn try_fast(&self, me: u64) -> bool {
        let o = self.owner.load(Ordering::Acquire);
        if o == me {
            return true;
        }
        o == 0 && self.owner.compare_exchange(0, me, Ordering::AcqRel, Ordering::Acquire).is_ok()
    }

    fn release(&self, me: u64) {
        if self.owner.compare_exchange(me, 0, Ordering::AcqRel, Ordering::Acquire).is_ok() {
            trace::emit(trace::EventKind::LockReleased { lock: self.trace_id });
            let _g = self.m.lock();
            self.cv.notify_all();
        }
    }

    /// Slow path: block until ownership is obtained or `timeout` elapses.
    fn claim(&self, me: u64, timeout: Duration) -> bool {
        self.wanted.fetch_add(1, Ordering::AcqRel);
        let deadline = Instant::now() + timeout;
        let got = loop {
            if self.try_fast(me) {
                break true;
            }
            let now = Instant::now();
            if now >= deadline {
                break false;
            }
            let mut g = self.m.lock();
            // Re-check under the lock to avoid a sleep/notify race.
            if self.try_fast(me) {
                break true;
            }
            let _ = self.cv.wait_for(&mut g, (deadline - now).min(Duration::from_millis(1)));
        };
        self.wanted.fetch_sub(1, Ordering::AcqRel);
        got
    }
}

struct ObjEntry {
    title: Title,
    slots: UnsafeCell<Vec<i64>>,
}

// Safety: slot access is gated on title ownership (one owner at a time).
unsafe impl Sync for ObjEntry {}
unsafe impl Send for ObjEntry {}

/// The ownership-protocol object store.
pub struct OwnershipStore {
    mode: OwnershipMode,
    set_slot_lock: TxMutex<()>,
    objects: Vec<ObjEntry>,
    claim_timeout: Duration,
    deadlock_timeouts: AtomicU64,
    /// Threads currently blocked in a claim, anywhere in the store. Safe
    /// points consult this single counter so the owner fast path stays one
    /// atomic load.
    wanted_total: AtomicU64,
}

impl fmt::Debug for OwnershipStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OwnershipStore")
            .field("mode", &self.mode)
            .field("objects", &self.objects.len())
            .field("deadlock_timeouts", &self.deadlock_timeouts.load(Ordering::Relaxed))
            .finish()
    }
}

impl OwnershipStore {
    /// Create a store of `objects` objects with `slots` slots each.
    pub fn new(mode: OwnershipMode, objects: usize, slots: usize) -> OwnershipStore {
        OwnershipStore {
            mode,
            set_slot_lock: TxMutex::new("moz1.scope", ()),
            objects: (0..objects)
                .map(|_| ObjEntry { title: Title::new(), slots: UnsafeCell::new(vec![0; slots]) })
                .collect(),
            claim_timeout: Duration::from_millis(100),
            deadlock_timeouts: AtomicU64::new(0),
            wanted_total: AtomicU64::new(0),
        }
    }

    /// Shorten the claim timeout (test harnesses use this so the buggy
    /// variant reports its deadlock quickly).
    pub fn with_claim_timeout(mut self, timeout: Duration) -> OwnershipStore {
        self.claim_timeout = timeout;
        self
    }

    /// How many claims timed out — the deadlock signature of the buggy
    /// variant (always 0 for the developers' fix under our workloads).
    pub fn deadlock_timeouts(&self) -> u64 {
        self.deadlock_timeouts.load(Ordering::Relaxed)
    }

    fn me(thread: usize) -> u64 {
        thread as u64 + 1
    }

    /// Ensure `thread` owns `obj`'s title, claiming it if needed.
    fn own(&self, thread: usize, obj: usize) -> bool {
        let me = Self::me(thread);
        let t = &self.objects[obj].title;
        if t.owner.load(Ordering::Acquire) == me {
            return true; // already the owner: no new acquisition to record
        }
        // Dev-fix claims are revocable in the Recipe-3 sense (the protocol
        // relinquishes every owned title before blocking), so their edges
        // never complete a reportable lock-order cycle.
        if trace::is_enabled() {
            trace::emit(trace::EventKind::LockAttempt {
                lock: t.trace_id,
                name: "moz1.title".to_string(),
                preemptible: self.mode == OwnershipMode::DevFix,
            });
        }
        let got = t.try_fast(me) || {
            self.wanted_total.fetch_add(1, Ordering::AcqRel);
            let got = t.claim(me, self.claim_timeout);
            self.wanted_total.fetch_sub(1, Ordering::AcqRel);
            got
        };
        if got {
            if trace::is_enabled() {
                trace::emit(trace::EventKind::LockAcquired {
                    lock: t.trace_id,
                    name: "moz1.title".to_string(),
                });
            }
            return true;
        }
        self.deadlock_timeouts.fetch_add(1, Ordering::Relaxed);
        false
    }

    /// Safe point: if anyone is blocked claiming, relinquish every wanted
    /// title this thread owns (SpiderMonkey owners yield between
    /// operations).
    #[inline]
    fn safe_point(&self, thread: usize) {
        if self.wanted_total.load(Ordering::Acquire) == 0 {
            return;
        }
        let me = Self::me(thread);
        for o in &self.objects {
            if o.title.wanted.load(Ordering::Acquire) > 0 {
                o.title.release(me);
            }
        }
    }

    /// Developers' fix step: drop every title this thread owns before
    /// blocking on a lock.
    fn release_all_titles(&self, thread: usize) {
        let me = Self::me(thread);
        for o in &self.objects {
            o.title.release(me);
        }
    }

    // The title is a lock: holding it grants exclusive access to the slots,
    // so the &self -> &mut aliasing clippy objects to cannot occur.
    #[allow(clippy::mut_from_ref)]
    fn slots_mut(&self, obj: usize) -> &mut Vec<i64> {
        // Safety: callers hold the object's title.
        unsafe { &mut *self.objects[obj].slots.get() }
    }
}

impl ObjectStore for OwnershipStore {
    fn set_slot(&self, thread: usize, obj: usize, slot: usize, value: i64) {
        if !self.own(thread, obj) {
            return; // abandoned (deadlock timeout in buggy mode)
        }
        self.slots_mut(obj)[slot] = value;
        self.safe_point(thread);
    }

    fn get_slot(&self, thread: usize, obj: usize, slot: usize) -> i64 {
        if !self.own(thread, obj) {
            return 0;
        }
        let v = self.slots_mut(obj)[slot];
        self.safe_point(thread);
        v
    }

    fn move_slot(&self, thread: usize, src: usize, dst: usize, slot: usize) -> bool {
        let me = Self::me(thread);
        if self.mode == OwnershipMode::DevFix {
            // The fix: relinquish everything we own before we can block, so
            // no claimant ever waits on a thread that is itself blocked.
            self.release_all_titles(thread);
        }
        let guard = self.set_slot_lock.lock().expect("setSlotLock cycle");
        let ok = self.own(thread, src) && self.own(thread, dst);
        if ok {
            let v = self.slots_mut(src)[slot];
            if v != 0 {
                self.slots_mut(src)[slot] = 0;
                self.slots_mut(dst)[slot] = v;
            }
        }
        drop(guard);
        self.safe_point(thread);
        let _ = me;
        ok
    }

    fn quiesce(&self, thread: usize) {
        self.release_all_titles(thread);
    }

    fn object_count(&self) -> usize {
        self.objects.len()
    }

    fn variant_name(&self) -> &'static str {
        match self.mode {
            OwnershipMode::Buggy => "ownership (buggy)",
            OwnershipMode::DevFix => "ownership (developer fix)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fast_path_single_thread() {
        let s = OwnershipStore::new(OwnershipMode::Buggy, 4, 2);
        s.set_slot(0, 1, 0, 42);
        assert_eq!(s.get_slot(0, 1, 0), 42);
        assert_eq!(s.deadlock_timeouts(), 0);
    }

    #[test]
    fn claim_transfers_between_threads() {
        let s = Arc::new(OwnershipStore::new(OwnershipMode::Buggy, 2, 1));
        s.set_slot(0, 0, 0, 7); // thread 0 owns object 0
        let s2 = s.clone();
        let h = std::thread::spawn(move || {
            // Thread 1 claims object 0; the owner relinquishes at its next
            // safe point (it keeps executing operations below).
            s2.set_slot(1, 0, 0, 9);
        });
        // Thread 0 stays active on another object so it passes safe points.
        while !h.is_finished() {
            s.set_slot(0, 1, 0, 1);
        }
        h.join().unwrap();
        assert_eq!(s.get_slot(1, 0, 0), 9);
        assert_eq!(s.deadlock_timeouts(), 0);
    }

    #[test]
    fn move_slot_moves_value() {
        let s = OwnershipStore::new(OwnershipMode::DevFix, 4, 2);
        s.set_slot(0, 0, 1, 5);
        assert!(s.move_slot(0, 0, 3, 1));
        assert_eq!(s.get_slot(0, 3, 1), 5);
        assert_eq!(s.get_slot(0, 0, 1), 0);
    }

    #[test]
    fn buggy_mode_deadlocks_on_forced_interleaving() {
        let s = Arc::new(
            OwnershipStore::new(OwnershipMode::Buggy, 2, 1)
                .with_claim_timeout(Duration::from_millis(50)),
        );
        // Each thread owns one object, then both move into the *other's*
        // object simultaneously: the mover that loses the setSlotLock race
        // blocks while owning the object the winner must claim — the
        // Mozilla-I cycle.
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|sc| {
            for t in 0..2usize {
                let s = s.clone();
                let barrier = &barrier;
                sc.spawn(move || {
                    s.set_slot(t, t, 0, t as i64 + 1);
                    barrier.wait();
                    s.move_slot(t, t, 1 - t, 0);
                });
            }
        });
        assert!(s.deadlock_timeouts() > 0, "buggy ownership protocol should have deadlocked");
    }

    #[test]
    fn dev_mode_survives_the_same_contention() {
        let s = Arc::new(
            OwnershipStore::new(OwnershipMode::DevFix, 2, 1)
                .with_claim_timeout(Duration::from_millis(400)),
        );
        std::thread::scope(|sc| {
            for t in 0..2usize {
                let s = s.clone();
                sc.spawn(move || {
                    for _ in 0..20 {
                        s.set_slot(t, t, 0, t as i64 + 1);
                        s.move_slot(t, t, 1 - t, 0);
                    }
                    s.quiesce(t);
                });
            }
        });
        assert_eq!(s.deadlock_timeouts(), 0, "developer fix must not deadlock");
    }
}
