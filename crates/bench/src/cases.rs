//! Case-study performance comparisons (paper §5.4, Table 4).
//!
//! Each runner drives the developer-fixed and TM-fixed variants of one
//! case study with the same workload and reports throughput relative to
//! the developers' fix — the paper's metric. Absolute numbers depend on
//! the host; the *shape* (who wins, by roughly what factor) is the
//! reproduction target recorded in EXPERIMENTS.md.

use std::time::{Duration, Instant};
use txfix_apps::apache::buffered_log::{make_record, RECORD_LEN};
use txfix_apps::apache::{
    run_apache1, Apache1Config, Apache1Variant, LockedBufferedLog, LogWriter, TmBufferedLog,
};
use txfix_apps::mysql::{MiniDb, MysqlVariant};
use txfix_apps::spidermonkey::{
    run_script_workload, HwModelStore, ObjectStore, OwnershipMode, OwnershipStore, PreemptStore,
    ScriptParams, StmStore,
};
use txfix_core::json::{Json, ToJson};
use txfix_stm::OverheadModel;
use txfix_xcall::SimFs;

/// How big a run to perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Fast smoke-scale run (CI, `table4`).
    Quick,
    /// Full benchmark-scale run (`experiments`, criterion).
    Full,
}

impl Scale {
    fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// One measured variant.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Variant label.
    pub name: String,
    /// Operations per second (higher is better).
    pub ops_per_sec: f64,
    /// Throughput relative to the developers' fix (1.0 = parity).
    pub relative_to_dev: f64,
}

/// A full case-study comparison.
#[derive(Clone, Debug)]
pub struct CaseComparison {
    /// Case-study id (e.g. "Mozilla-I").
    pub case: &'static str,
    /// Recipe used by the TM fix.
    pub recipe: &'static str,
    /// Paper-reported TM-fix performance relative to the developers' fix.
    pub paper_relative: f64,
    /// Measured variants (first entry is the developers' fix).
    pub measurements: Vec<Measurement>,
}

impl CaseComparison {
    /// The headline measured relative performance: the *primary* TM fix
    /// (second measurement) vs. the developers' fix.
    pub fn measured_relative(&self) -> f64 {
        self.measurements.get(1).map(|m| m.relative_to_dev).unwrap_or(f64::NAN)
    }

    /// Render a small report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} ({}) — paper: TM at {:.1}% of developer fix\n",
            self.case,
            self.recipe,
            self.paper_relative * 100.0
        );
        for m in &self.measurements {
            out.push_str(&format!(
                "  {:38} {:>12.0} ops/s   {:>6.1}% of dev fix\n",
                m.name,
                m.ops_per_sec,
                m.relative_to_dev * 100.0
            ));
        }
        out
    }
}

/// JSON has no NaN/Infinity; degenerate ratios become `null`.
fn finite(v: f64) -> Json {
    if v.is_finite() {
        Json::Number(v)
    } else {
        Json::Null
    }
}

impl ToJson for Measurement {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("name", Json::str(self.name.clone())),
            ("ops_per_sec", finite(self.ops_per_sec)),
            ("relative_to_dev", finite(self.relative_to_dev)),
        ])
    }
}

impl ToJson for CaseComparison {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("case", Json::str(self.case)),
            ("recipe", Json::str(self.recipe)),
            ("paper_relative", finite(self.paper_relative)),
            ("measured_relative", finite(self.measured_relative())),
            ("measurements", Json::list(self.measurements.iter().map(ToJson::to_json_value))),
        ])
    }
}

/// Best-of-N throughput: repeated runs damp single-core scheduler noise
/// (the best run is the least interfered-with one).
fn best_of(n: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..n.max(1)).map(|_| f()).fold(0.0f64, f64::max)
}

fn finish(
    case: &'static str,
    recipe: &'static str,
    paper: f64,
    raw: Vec<(String, f64)>,
) -> CaseComparison {
    let dev = raw.first().map(|r| r.1).unwrap_or(1.0);
    CaseComparison {
        case,
        recipe,
        paper_relative: paper,
        measurements: raw
            .into_iter()
            .map(|(name, ops)| Measurement {
                name,
                ops_per_sec: ops,
                relative_to_dev: if dev > 0.0 { ops / dev } else { f64::NAN },
            })
            .collect(),
    }
}

/// Mozilla-I (§5.4.1): four interpreter threads over the shared runtime.
///
/// Measured variants: developers' fix (ownership protocol with
/// drop-before-block), Recipe 1 on software TM (paper: 21%), Recipe 1 on
/// the hardware model (paper: 99.3%), Recipe 3 preemption (paper: 85%).
pub fn mozilla_i_comparison(scale: Scale) -> CaseComparison {
    let params = ScriptParams {
        threads: 4,
        objects_per_thread: 8,
        slots: 8,
        shared_objects: 4,
        iterations: scale.pick(4_000, 40_000),
        cross_object_period: 64,
        // Calibrated interpreter work per op: property accesses are a large
        // minority of a SunSpider iteration, not all of it.
        compute_ns: 250,
    };
    let total = params.total_objects();

    let run = |store: &dyn ObjectStore| -> f64 {
        best_of(3, || run_script_workload(store, &params).ops_per_sec)
    };

    let dev = OwnershipStore::new(OwnershipMode::DevFix, total, params.slots);
    let sw = StmStore::software(total, params.slots);
    let hw = HwModelStore::new(total, params.slots);
    let pre = PreemptStore::new(total, params.slots);

    let raw = vec![
        ("developer fix (ownership protocol)".to_string(), run(&dev)),
        ("recipe 1, software TM".to_string(), run(&sw)),
        ("recipe 1, hardware TM model".to_string(), run(&hw)),
        ("recipe 3, preemptible locks".to_string(), run(&pre)),
    ];
    finish("Mozilla-I", "recipe 1 (and 3)", 0.21, raw)
}

/// Apache-I (§5.4.2): saturated listener/worker handoff. Paper: TM fix at
/// ~78–85% of the developers' fix under stress.
pub fn apache_i_comparison(scale: Scale) -> CaseComparison {
    let connections = scale.pick(300, 2_000);
    let base = Apache1Config {
        workers: 4,
        connections,
        process_cost: Duration::from_micros(20),
        ..Default::default()
    };
    let run = |variant| -> f64 {
        best_of(3, || {
            let out = run_apache1(&Apache1Config { variant, ..base });
            assert!(!out.deadlocked);
            out.completed as f64 / out.elapsed.as_secs_f64().max(1e-9)
        })
    };
    let raw = vec![
        ("developer fix (unlock before wait)".to_string(), run(Apache1Variant::DevFix)),
        ("recipe 3 (revocable lock + retry)".to_string(), run(Apache1Variant::TmFix)),
    ];
    finish("Apache-I", "recipe 3", 0.85, raw)
}

/// Apache-II (§5.4.3): request loop with one buffered-log write per
/// request. Paper: TM fix ~96.5% of the developers' per-log locks.
pub fn apache_ii_comparison(scale: Scale) -> CaseComparison {
    const THREADS: usize = 4;
    let requests = scale.pick(1_000u64, 10_000);
    // Parsing, handler dispatch and response generation dwarf the log
    // append in a real request; `ab` measures whole requests (~80µs/request
    // ≈ 12.5k req/s, typical for static content on one core).
    let request_work = Duration::from_micros(80);

    let run = |log: &dyn LogWriter| -> f64 {
        best_of(3, || {
            let start = Instant::now();
            std::thread::scope(|s| {
                for t in 0..THREADS {
                    s.spawn(move || {
                        for i in 0..requests {
                            // Serve the (simulated) request, then log it.
                            busy(request_work);
                            log.write_record(&make_record(t, i));
                        }
                    });
                }
            });
            log.flush();
            (THREADS as u64 * requests) as f64 / start.elapsed().as_secs_f64().max(1e-9)
        })
    };

    let fs = SimFs::new();
    let dev = LockedBufferedLog::new(&fs, "dev.log", 64 * RECORD_LEN);
    let tm =
        TmBufferedLog::with_overhead(&fs, "tm.log", 64 * RECORD_LEN, OverheadModel::SOFTWARE_TM);
    let raw = vec![
        ("developer fix (per-log lock)".to_string(), run(&dev)),
        ("recipe 2 (atomic block + x-call)".to_string(), run(&tm)),
    ];
    finish("Apache-II", "recipe 2", 0.965, raw)
}

/// MySQL-I (§5.4.4): repeated delete-all on different tables plus insert
/// traffic. Paper: TM fix at ~50% of the developers' fix on the delete
/// stress — Recipe 4's atomic/lock serialization costs *concurrency*:
/// deletes on different tables run in parallel under per-table locks but
/// strictly serially under the domain-exclusive atomic section.
///
/// On hosts with ≥ 4 cores this is measured as wall-clock throughput. On
/// smaller hosts (where no parallelism exists to lose) the comparison
/// falls back to an Amdahl model over *measured* per-operation costs: the
/// developer fix parallelizes all work across the tables, while Recipe 4
/// serializes the deletes. The fallback is labeled in the measurement
/// names.
pub fn mysql_i_comparison(scale: Scale) -> CaseComparison {
    const TABLES: usize = 4;
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores >= TABLES {
        mysql_i_wall_clock(scale, TABLES)
    } else {
        mysql_i_modeled(scale, TABLES)
    }
}

fn mysql_i_wall_clock(scale: Scale, tables: usize) -> CaseComparison {
    let deletes = scale.pick(400u64, 4_000);
    let run = |variant| -> f64 {
        // Raise the per-row engine work so the table section dominates
        // lock overhead, as it does in a real storage engine.
        let db = MiniDb::new(variant, tables).with_row_cost(4_000);
        for t in 0..tables {
            for i in 0..8 {
                db.insert(t, i, i as i64);
            }
        }
        let start = Instant::now();
        std::thread::scope(|s| {
            for dt in 0..tables {
                let db = &db;
                s.spawn(move || {
                    for i in 0..deletes {
                        db.delete_all(dt);
                        db.insert(dt, i, i as i64);
                        db.insert(dt, i + deletes, i as i64);
                    }
                });
            }
        });
        (tables as u64 * deletes * 3) as f64 / start.elapsed().as_secs_f64().max(1e-9)
    };
    let raw = vec![
        ("developer fix (table lock through log)".to_string(), run(MysqlVariant::DevFix)),
        ("recipe 4 (atomic/lock serialization)".to_string(), run(MysqlVariant::TmRecipe4)),
    ];
    finish("MySQL-I", "recipe 4", 0.50, raw)
}

fn mysql_i_modeled(scale: Scale, tables: usize) -> CaseComparison {
    // Measure single-threaded per-op costs (one delete-all : two inserts,
    // the stress mix), then model `tables`-way execution: the developer
    // fix parallelizes everything; recipe 4 serializes the deletes and
    // excludes concurrent inserts while one runs.
    let rounds = scale.pick(300u64, 3_000);
    let measure = |variant| -> (f64, f64) {
        let db = MiniDb::new(variant, tables).with_row_cost(4_000);
        for i in 0..8 {
            db.insert(0, i, i as i64);
        }
        let d0 = Instant::now();
        for _ in 0..rounds {
            db.delete_all(0);
        }
        let delete_cost = d0.elapsed().as_secs_f64() / rounds as f64;
        let i0 = Instant::now();
        for i in 0..(2 * rounds) {
            db.insert(0, i, i as i64);
        }
        let insert_cost = i0.elapsed().as_secs_f64() / (2 * rounds) as f64;
        (delete_cost, insert_cost)
    };

    let ops = (tables as u64 * rounds) as f64; // deletes; inserts = 2x
    let model = |(d, i): (f64, f64), serial_deletes: bool| -> f64 {
        let delete_work = ops * d;
        let insert_work = 2.0 * ops * i;
        let time = if serial_deletes {
            delete_work + insert_work / tables as f64
        } else {
            (delete_work + insert_work) / tables as f64
        };
        3.0 * ops / time.max(1e-12)
    };

    let dev = model(measure(MysqlVariant::DevFix), false);
    let tm = model(measure(MysqlVariant::TmRecipe4), true);
    let raw = vec![
        (format!("developer fix (modeled {tables}-way, measured op costs)"), dev),
        (format!("recipe 4 (modeled {tables}-way, deletes serialized)"), tm),
    ];
    finish("MySQL-I", "recipe 4", 0.50, raw)
}

fn busy(d: Duration) {
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_comparisons_produce_sane_relatives() {
        for c in [
            mozilla_i_comparison(Scale::Quick),
            apache_i_comparison(Scale::Quick),
            apache_ii_comparison(Scale::Quick),
            mysql_i_comparison(Scale::Quick),
        ] {
            assert!(c.measurements.len() >= 2, "{}", c.case);
            assert!((c.measurements[0].relative_to_dev - 1.0).abs() < 1e-9);
            for m in &c.measurements {
                assert!(m.ops_per_sec > 0.0, "{}: {m:?}", c.case);
                assert!(m.relative_to_dev.is_finite());
            }
            assert!(!c.render().is_empty());
        }
    }

    #[test]
    fn tm_fixes_cost_performance_in_the_paper_direction() {
        // Shape assertions (generous bounds — CI machines vary): the
        // software-TM Recipe 1 fix is markedly slower than the developers'
        // fix, and Recipe 4 costs concurrency on the delete stress.
        let m = mozilla_i_comparison(Scale::Quick);
        let sw = &m.measurements[1];
        assert!(
            sw.relative_to_dev < 0.8,
            "software TM should be well below the dev fix, got {:.2}",
            sw.relative_to_dev
        );
        let hw = &m.measurements[2];
        assert!(hw.relative_to_dev > sw.relative_to_dev, "hardware model should beat software TM");

        let my = mysql_i_comparison(Scale::Quick);
        assert!(
            my.measured_relative() < 0.95,
            "recipe 4 serialization should cost concurrency, got {:.2}",
            my.measured_relative()
        );
    }
}
