//! Systematic schedule exploration for the txfix corpus.
//!
//! Stress and chaos testing sample schedules; this crate *enumerates*
//! them. Scenarios from the scheduled corpus
//! ([`txfix_corpus::scheduled_scenarios`]) run under the cooperative
//! deterministic scheduler in [`txfix_stm::sched`], which virtualizes
//! every synchronization point (transactional reads/writes/commits, lock
//! acquire/release, condvar wait/notify, traced shared accesses, chaos
//! injection points) and hands the interleaving decision to a pluggable
//! *picker*. Two strategies drive it:
//!
//! - [`dfs`]: bounded exhaustive depth-first search with sleep-set
//!   partial-order reduction — proves absence of bugs in the explored
//!   (reduced) space, exhausts small scenarios outright;
//! - [`pct`]: seeded random-priority scheduling with a preemption bound —
//!   probabilistically digs out shallow races in a few hundred runs.
//!
//! Every failure is replayable bit-for-bit from its decision trace
//! ([`runner::replay_picker`]), and is greedily minimized
//! ([`minimize`]) before being reported, so the printed schedule contains
//! only the context switches that matter.

pub mod dfs;
pub mod minimize;
pub mod pct;
pub mod report;
pub mod runner;

use report::{EntryReport, ExploreReport, FailureReport};
use runner::{RunResult, ScheduleOutcome, DEFAULT_MAX_STEPS};
use txfix_corpus::{scheduled_scenarios, ScheduledScenario, Variant};
use txfix_stm::sched::{self, format_trace};

/// Which exploration strategy to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Bounded exhaustive DFS with sleep-set partial-order reduction.
    Dfs,
    /// Seeded PCT-style random-priority scheduling.
    Pct,
}

impl Strategy {
    /// The name used in reports and on the CLI.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Dfs => "dfs",
            Strategy::Pct => "pct",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Strategy> {
        match s {
            "dfs" => Some(Strategy::Dfs),
            "pct" => Some(Strategy::Pct),
            _ => None,
        }
    }
}

/// Exploration parameters.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Strategy to drive schedules with.
    pub strategy: Strategy,
    /// Maximum schedules per (scenario, variant).
    pub budget: u64,
    /// Base seed (PCT only; recorded either way).
    pub seed: u64,
    /// Per-schedule step bound.
    pub max_steps: u64,
    /// PCT preemption bound (`d`).
    pub pct_depth: u32,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            strategy: Strategy::Dfs,
            budget: 2_000,
            seed: 0,
            max_steps: DEFAULT_MAX_STEPS,
            pct_depth: 3,
        }
    }
}

/// Short variant name for reports and the CLI (`buggy` / `dev` / `tm`).
pub fn variant_short(v: Variant) -> &'static str {
    match v {
        Variant::Buggy => "buggy",
        Variant::DevFix => "dev",
        Variant::TmFix => "tm",
    }
}

/// Parse a CLI variant name.
pub fn variant_parse(s: &str) -> Option<Variant> {
    match s {
        "buggy" => Some(Variant::Buggy),
        "dev" => Some(Variant::DevFix),
        "tm" => Some(Variant::TmFix),
        _ => None,
    }
}

/// Raw result of exploring one schedule space.
pub struct Exploration {
    /// Schedules actually executed.
    pub schedules: u64,
    /// Schedules pruned by sleep sets (DFS only).
    pub pruned: u64,
    /// Schedules cut off by the step bound.
    pub step_limited: u64,
    /// Whether the (reduced) space was fully enumerated within budget
    /// (DFS only; PCT never exhausts).
    pub exhausted: bool,
    /// The first failing schedule, if any.
    pub failure: Option<ScheduleOutcome>,
}

/// Explore an ad-hoc [`ScheduledRun`](txfix_corpus::ScheduledRun)
/// builder — the programmatic entry point for callers that synthesize
/// their own runs (fix inference verifies patched scenarios this way)
/// rather than going through the scheduled corpus registry.
///
/// Takes the process-global scheduler gate for the whole exploration;
/// do not call from inside [`sched::run_exclusively`].
pub fn explore_build(
    build: &dyn Fn(Variant) -> txfix_corpus::ScheduledRun,
    variant: Variant,
    cfg: &ExploreConfig,
) -> Exploration {
    sched::run_exclusively(|| drive(build, variant, cfg))
}

fn drive(
    build: &dyn Fn(Variant) -> txfix_corpus::ScheduledRun,
    variant: Variant,
    cfg: &ExploreConfig,
) -> Exploration {
    match cfg.strategy {
        Strategy::Dfs => {
            let out = dfs::explore_dfs(build, variant, cfg.budget, cfg.max_steps);
            Exploration {
                schedules: out.schedules,
                pruned: out.pruned,
                step_limited: out.step_limited,
                exhausted: out.exhausted,
                failure: out.failure,
            }
        }
        Strategy::Pct => {
            let params = pct::PctParams { seed: cfg.seed, depth: cfg.pct_depth, steps_hint: 64 };
            let mut ex = Exploration {
                schedules: 0,
                pruned: 0,
                step_limited: 0,
                exhausted: false,
                failure: None,
            };
            for index in 0..cfg.budget {
                let outcome = runner::run_schedule(
                    build(variant),
                    cfg.max_steps,
                    pct::pct_picker(params, index),
                );
                ex.schedules += 1;
                match outcome.result {
                    RunResult::StepLimit => ex.step_limited += 1,
                    RunResult::Bug(_) => {
                        ex.failure = Some(outcome);
                        break;
                    }
                    RunResult::Pass | RunResult::Pruned => {}
                }
            }
            ex
        }
    }
}

/// Explore one (scenario, variant) and report against its expectation:
/// buggy variants must break within budget, fixed variants must survive
/// every explored schedule.
pub fn explore_variant(
    scenario: &dyn ScheduledScenario,
    variant: Variant,
    cfg: &ExploreConfig,
) -> EntryReport {
    let build = |v: Variant| scenario.build(v);
    // The scheduler is process-global: hold its gate for the whole
    // exploration (including minimization re-executions).
    sched::run_exclusively(|| {
        let ex = drive(&build, variant, cfg);
        let failure = ex.failure.map(|raw| {
            let found_after = ex.schedules;
            // Greedily strip incidental context switches before reporting.
            let slots: Vec<usize> = raw.log.events.iter().map(|&(s, _)| s).collect();
            let minimized =
                minimize::minimize_failure(&build, variant, cfg.max_steps, slots).unwrap_or(raw);
            let message = match &minimized.result {
                RunResult::Bug(m) => m.clone(),
                _ => unreachable!("minimizer only returns failing runs"),
            };
            FailureReport {
                message,
                trace: format_trace(&minimized.log.trace()),
                depth: minimized.log.decisions.len() as u64,
                preemptions: minimized.log.preemptions(),
                found_after,
            }
        });
        let ok = match variant {
            Variant::Buggy => failure.is_some(),
            Variant::DevFix | Variant::TmFix => failure.is_none(),
        };
        EntryReport {
            key: scenario.key().to_string(),
            variant: variant_short(variant).to_string(),
            schedules: ex.schedules,
            pruned: ex.pruned,
            step_limited: ex.step_limited,
            exhausted: ex.exhausted,
            failure,
            ok,
        }
    })
}

/// Replay a recorded decision trace against a scenario variant and return
/// the outcome — the determinism check behind "replayable bit-for-bit".
pub fn replay(
    scenario: &dyn ScheduledScenario,
    variant: Variant,
    max_steps: u64,
    trace: &[usize],
) -> ScheduleOutcome {
    sched::run_exclusively(|| {
        runner::run_schedule(
            scenario.build(variant),
            max_steps,
            runner::replay_picker(trace.to_vec()),
        )
    })
}

/// Sweep scenarios (all, or the ones named in `keys`) across the
/// requested variants.
pub fn explore_corpus(
    keys: Option<&[String]>,
    variants: &[Variant],
    cfg: &ExploreConfig,
) -> Result<ExploreReport, String> {
    let scenarios = scheduled_scenarios();
    let selected: Vec<_> = match keys {
        None => scenarios,
        Some(ks) => {
            for k in ks {
                if !scenarios.iter().any(|s| s.key() == k) {
                    return Err(format!(
                        "no scheduled scenario '{k}' (have: {})",
                        scenarios.iter().map(|s| s.key()).collect::<Vec<_>>().join(", ")
                    ));
                }
            }
            scenarios.into_iter().filter(|s| ks.iter().any(|k| k == s.key())).collect()
        }
    };
    let mut entries = Vec::new();
    for scenario in &selected {
        for &variant in variants {
            entries.push(explore_variant(scenario.as_ref(), variant, cfg));
        }
    }
    Ok(ExploreReport {
        strategy: cfg.strategy.name().to_string(),
        budget: cfg.budget,
        seed: cfg.seed,
        entries,
    })
}
