//! Workload-generator properties: Zipfian skew tracks theta, the stream
//! is a pure function of `(seed, worker, i)`, and the op mix honours the
//! configured ratios (including the burst-phase reweighting).

use proptest::prelude::*;
use txfix_bench::workload::{Mix, Workload, WorkloadCfg, WorkloadOp, Zipfian};
use txfix_stm::chaos::splitmix64;

fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The analytic probability of rank `r` under `(n, theta)`.
fn analytic(n: usize, theta: f64, r: usize) -> f64 {
    let w = |r: usize| 1.0 / ((r + 1) as f64).powf(theta);
    let total: f64 = (0..n).map(w).sum();
    w(r) / total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Empirical rank frequencies track the analytic Zipfian pmf for the
    /// configured theta, across seeds and skews.
    #[test]
    fn zipfian_rank_frequency_tracks_theta(
        seed in any::<u64>(),
        theta_milli in 0u64..1401,
    ) {
        let theta = theta_milli as f64 / 1000.0;
        let n = 32;
        let z = Zipfian::new(n, theta);
        let samples = 8000u64;
        let mut counts = vec![0u64; n];
        let mut state = splitmix64(seed);
        for _ in 0..samples {
            state = splitmix64(state);
            counts[z.sample(unit(state))] += 1;
        }
        // Head rank and the top-quartile mass both within sampling noise
        // of the analytic values (std err ~0.005 at these sizes).
        let head = counts[0] as f64 / samples as f64;
        prop_assert!(
            (head - analytic(n, theta, 0)).abs() < 0.03,
            "rank-0 frequency {head} vs analytic {}", analytic(n, theta, 0)
        );
        let top: f64 = counts[..n / 4].iter().sum::<u64>() as f64 / samples as f64;
        let top_want: f64 = (0..n / 4).map(|r| analytic(n, theta, r)).sum();
        prop_assert!((top - top_want).abs() < 0.03, "top-quartile {top} vs {top_want}");
        // Higher theta concentrates: the head must not be *less* likely
        // than uniform by more than noise.
        prop_assert!(head + 0.03 >= 1.0 / n as f64);
    }

    /// Same `(seed, worker, i)` always yields the same op; a different
    /// seed yields a different stream.
    #[test]
    fn workload_stream_is_deterministic(seed in any::<u64>()) {
        let a = Workload::new(WorkloadCfg::default());
        let b = Workload::new(WorkloadCfg::default());
        let stream =
            |w: &Workload, s: u64| (0..3).flat_map(|wk| (0..200).map(move |i| (wk, i)))
                .map(|(wk, i)| w.op(s, wk, i)).collect::<Vec<_>>();
        prop_assert_eq!(stream(&a, seed), stream(&b, seed));
        prop_assert_ne!(stream(&a, seed), stream(&a, seed ^ 1));
    }
}

fn kind_counts(wl: &Workload, seed: u64, n: u64) -> [f64; 4] {
    let mut c = [0u64; 4];
    for w in 0..4 {
        for i in 0..n {
            match wl.op(seed, w, i) {
                WorkloadOp::Get(_) => c[0] += 1,
                WorkloadOp::Put(..) => c[1] += 1,
                WorkloadOp::Delete(_) => c[2] += 1,
                WorkloadOp::Scan(_) => c[3] += 1,
            }
        }
    }
    let total = (4 * n) as f64;
    c.map(|x| x as f64 / total)
}

#[test]
fn mix_ratios_are_honoured_without_bursts() {
    let cfg = WorkloadCfg { burst_len: 0, ..WorkloadCfg::default() };
    let wl = Workload::new(cfg);
    let got = kind_counts(&wl, 0xA11CE, 5000);
    let m = cfg.mix;
    let total = (m.get + m.put + m.delete + m.scan) as f64;
    for (i, w) in [m.get, m.put, m.delete, m.scan].iter().enumerate() {
        let want = *w as f64 / total;
        assert!(
            (got[i] - want).abs() < 0.015,
            "op kind {i}: frequency {} vs configured {want}",
            got[i]
        );
    }
}

#[test]
fn burst_phases_blend_the_mix_as_configured() {
    // With bursts on, the expected blend is the per-phase mix weighted by
    // time spent in each phase (burst triples write weights).
    let cfg = WorkloadCfg::default();
    let wl = Workload::new(cfg);
    let got = kind_counts(&wl, 0xB00 + 7, 6400);
    let frac_burst = cfg.burst_len as f64 / cfg.burst_period as f64;
    let expect = |quiet: u32, burst: u32, quiet_total: f64, burst_total: f64| {
        (1.0 - frac_burst) * quiet as f64 / quiet_total + frac_burst * burst as f64 / burst_total
    };
    let m = cfg.mix;
    let quiet_total = (m.get + m.put + m.delete + m.scan) as f64;
    let burst_total = (m.get + 3 * m.put + 3 * m.delete + m.scan) as f64;
    let cases = [(m.get, m.get), (m.put, 3 * m.put), (m.delete, 3 * m.delete), (m.scan, m.scan)];
    for (i, (q, b)) in cases.iter().enumerate() {
        let want = expect(*q, *b, quiet_total, burst_total);
        assert!(
            (got[i] - want).abs() < 0.015,
            "op kind {i}: frequency {} vs blended expectation {want}",
            got[i]
        );
    }
}

#[test]
fn sessions_hash_into_the_user_population() {
    let cfg = WorkloadCfg { users: 10, ..WorkloadCfg::default() };
    let wl = Workload::new(cfg);
    // All ops of one session map to one user; sessions spread over users.
    let mut seen = std::collections::BTreeSet::new();
    for session in 0..50u64 {
        let i0 = session * cfg.session_len;
        let u = wl.user_of(1, 0, i0);
        assert!(u < cfg.users);
        for k in 1..cfg.session_len {
            assert_eq!(wl.user_of(1, 0, i0 + k), u, "session must keep its user");
        }
        seen.insert(u);
    }
    assert!(seen.len() >= 5, "50 sessions over 10 users must hit several users");
    assert!(Mix::parse("80:15:3:2").is_some());
}
