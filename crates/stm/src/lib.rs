//! # txfix-stm: a software transactional memory runtime
//!
//! This crate reproduces the TM substrate of *Applying Transactional Memory
//! to Concurrency Bugs* (Volos, Tack, Swift, Lu — ASPLOS 2012): a word-based
//! software transactional memory in the style of TL2 / Intel's STM runtime,
//! providing the `atomic { ... }` construct the paper's four fix recipes are
//! built on.
//!
//! ## Features
//!
//! - **Atomic regions**: [`atomic`] executes a closure as a memory
//!   transaction over [`TVar`]s, with commit-time validation against a
//!   global version clock and automatic re-execution on conflict.
//! - **Atomic vs. relaxed transactions** (paper §5.1): [`atomic_relaxed`]
//!   transactions may contain unsafe operations through
//!   [`Txn::unsafe_op`], which makes them irrevocable (the runtime falls
//!   back to a global lock, like Intel's STM).
//! - **Explicit rollback**: [`Txn::restart`] reproduces the paper's `abort`
//!   statement; [`Txn::retry`] aborts and blocks until a variable in the
//!   read set changes.
//! - **Commit-before-wait**: [`Txn::wait_on`] commits the work done so far
//!   and blocks on a [`WaitPoint`] (the hook used by transactional
//!   condition variables in `txfix-tmsync`).
//! - **External resources**: revocable locks and transactional I/O enlist
//!   in a transaction via [`Txn::enlist`], [`Txn::on_commit`] and
//!   [`Txn::on_abort`], and deadlock detectors can preempt a transaction
//!   through its [`KillHandle`].
//! - **Cost modelling**: [`OverheadModel`] charges calibrated
//!   per-read/write/commit costs so benchmarks reproduce the 3–5×
//!   instrumentation overhead of software TM and the near-zero overhead of
//!   the simulated hardware TM.
//! - **Capacity bounds**: [`TxnBuilder::capacity`] models bounded hardware
//!   read/write sets (used by `txfix-htm`).
//! - **One entry-point family**: every transaction goes through
//!   [`Txn::build`] (or the [`atomic`] / [`atomic_relaxed`] convenience
//!   wrappers over it).
//! - **Per-site metrics**: [`TxnBuilder::site`] labels transactions for
//!   the [`obs`] observability layer (commit/abort/latency attribution
//!   behind `txfix stress`).
//!
//! ## Migrating from the pre-builder entry points
//!
//! Earlier revisions exposed four parallel entry points (`atomic`,
//! `atomic_relaxed`, `atomic_report`, `atomic_with`) plus a bare
//! `TxnOptions` struct. They collapsed into one fluent builder:
//!
//! | before                                         | now                                          |
//! |------------------------------------------------|----------------------------------------------|
//! | `atomic(body)`                                 | unchanged (thin wrapper)                     |
//! | `atomic_relaxed(body)`                         | unchanged (thin wrapper)                     |
//! | `atomic_report(&opts, body)?`                  | `Txn::build()….try_run(body)?`               |
//! | `atomic_with(&opts, body)?`                    | `Txn::build()….try_run(body)?` (drop report) |
//! | `TxnOptions::default().kind(TxnKind::Relaxed)` | `Txn::build().relaxed()`                     |
//! | `opts.capacity(r, w)`, `.max_attempts(n)`, `.backoff(p)`, `.overhead(m)`, `.write_policy(p)` | same method names on the builder |
//!
//! The builder is `Clone` and cheap to store, so code that previously kept
//! a `TxnOptions` in a struct keeps a configured [`TxnBuilder`] instead.
//! New with the redesign: [`TxnBuilder::site`] attributes every
//! transaction from that builder to a named site for per-site metrics.
//!
//! ## Example
//!
//! ```
//! use txfix_stm::{atomic, TVar};
//!
//! let checking = TVar::new(100i64);
//! let savings = TVar::new(0i64);
//!
//! // Move 40 between accounts; no interleaving ever observes money
//! // created or destroyed.
//! atomic(|txn| {
//!     let c = checking.read(txn)?;
//!     let s = savings.read(txn)?;
//!     checking.write(txn, c - 40)?;
//!     savings.write(txn, s + 40)
//! });
//!
//! assert_eq!(checking.load() + savings.load(), 100);
//! ```

#![warn(missing_docs)]

#[cfg(feature = "canary-core")]
pub mod canary;
pub mod chaos;
pub mod clock;
mod contention;
mod error;
mod notifier;
pub mod obs;
mod orec;
mod overhead;
mod runtime;
pub mod sched;
mod serial;
mod stats;
pub mod trace;
mod tvar;
mod txn;

pub use clock::{ClockMode, Gv1, Gv5, VersionClock};
pub use contention::{seed_backoff_rng, BackoffPolicy};
pub use error::{Abort, CapacityKind, ConflictKind, StmResult, TxnError, WaitPoint};
pub use obs::SiteId;
pub use overhead::OverheadModel;
pub use runtime::{
    atomic, atomic_relaxed, EscalationPolicy, EscalationRung, TxnBuilder, TxnReport,
};
pub use stats::{quiescent_stats, stats, StatsSnapshot};
pub use tvar::{TVar, VarId};
pub use txn::{KillHandle, TxResource, Txn, TxnKind, WritePolicy};

/// Current value of the global version clock (diagnostic).
pub fn clock_now() -> u64 {
    clock::now()
}
