//! GV1-vs-GV5 clock-mode tests: the GV5 thread-epoch clock with lazy
//! snapshot extension must never admit a stale read, with GV1 (the single
//! global counter, trivially serializable) as the oracle.
//!
//! The clock mode is process-global, so every test in this binary funnels
//! through [`with_mode`], which serializes mode changes behind one mutex
//! and always restores the deterministic GV1 default.

use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};
use txfix_stm::{atomic, ClockMode, TVar};

static MODE_GATE: Mutex<()> = Mutex::new(());

/// Run `f` under `mode`, holding the process-wide gate so concurrent
/// tests cannot flip the clock mid-transaction, and restore GV1 after.
fn with_mode<T>(mode: ClockMode, f: impl FnOnce() -> T) -> T {
    let _gate: MutexGuard<'_, ()> = MODE_GATE.lock().unwrap_or_else(|e| e.into_inner());
    txfix_stm::clock::set_mode(mode);
    let out = f();
    txfix_stm::clock::set_mode(ClockMode::Gv1);
    out
}

/// The transfer workload: writers move amounts between two accounts
/// (invariant: the sum is conserved), readers snapshot both. A stale read
/// — a GV5 transaction whose lazily-extended snapshot admits one
/// pre-transfer and one post-transfer value — shows up as a torn sum.
fn transfer_workload(writers: usize, rounds: usize) -> (i64, u64) {
    let a = TVar::new(500i64);
    let b = TVar::new(500i64);
    let torn = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for w in 0..writers {
            let (a, b) = (a.clone(), b.clone());
            s.spawn(move || {
                for i in 0..rounds {
                    let amt = ((i + w) % 17) as i64;
                    atomic(|txn| {
                        let x = a.read(txn)?;
                        let y = b.read(txn)?;
                        a.write(txn, x - amt)?;
                        b.write(txn, y + amt)
                    });
                }
            });
        }
        let (a, b) = (a.clone(), b.clone());
        let torn = &torn;
        s.spawn(move || {
            for _ in 0..rounds {
                // Read-only GV5 transactions run off the thread epoch and
                // must lazily extend (validating every prior read) when
                // they race a committing writer — never return a torn pair.
                let (x, y) = atomic(|txn| Ok((a.read(txn)?, b.read(txn)?)));
                if x + y != 1000 {
                    torn.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }
        });
    });
    (a.load() + b.load(), torn.into_inner())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GV5 lazy snapshot extension never admits a stale read: the same
    /// racing transfer workload satisfies the oracle invariant (sum
    /// conserved, no torn snapshot) under GV1 and under GV5.
    #[test]
    fn gv5_never_admits_a_stale_read(writers in 1usize..4, rounds in 1usize..40) {
        for mode in [ClockMode::Gv1, ClockMode::Gv5] {
            let (sum, torn) = with_mode(mode, || transfer_workload(writers, rounds));
            prop_assert_eq!(torn, 0, "stale read under {}", mode.name());
            prop_assert_eq!(sum, 1000, "conservation broken under {}", mode.name());
        }
    }

    /// Both clocks serialize concurrent read-modify-write increments to
    /// the same total the sequential oracle computes.
    #[test]
    fn both_clocks_serialize_concurrent_adds(
        per_thread in proptest::collection::vec(
            proptest::collection::vec((0usize..3, -20i64..20), 1..12),
            2..4,
        ),
    ) {
        let mut expected = [0i64; 3];
        for prog in &per_thread {
            for &(idx, delta) in prog {
                expected[idx] += delta;
            }
        }
        for mode in [ClockMode::Gv1, ClockMode::Gv5] {
            let got = with_mode(mode, || {
                let vars: Vec<TVar<i64>> = (0..3).map(|_| TVar::new(0)).collect();
                std::thread::scope(|s| {
                    for prog in &per_thread {
                        let vars = vars.clone();
                        s.spawn(move || {
                            for &(idx, delta) in prog {
                                atomic(|txn| {
                                    let v = vars[idx].read(txn)?;
                                    vars[idx].write(txn, v + delta)
                                });
                            }
                        });
                    }
                });
                vars.iter().map(|v| v.load()).collect::<Vec<i64>>()
            });
            prop_assert_eq!(&got, &expected.to_vec(), "divergence under {}", mode.name());
        }
    }
}

/// Sequential execution is mode-independent: the same single-threaded
/// program leaves identical state under GV1 and GV5.
#[test]
fn sequential_runs_agree_across_modes() {
    let run = || {
        let vars: Vec<TVar<i64>> = (0..4).map(|i| TVar::new(i as i64)).collect();
        for step in 0..50i64 {
            atomic(|txn| {
                let i = (step % 4) as usize;
                let j = ((step + 1) % 4) as usize;
                let x = vars[i].read(txn)?;
                let y = vars[j].read(txn)?;
                vars[i].write(txn, y + step)?;
                vars[j].write(txn, x - step)
            });
        }
        vars.iter().map(|v| v.load()).collect::<Vec<i64>>()
    };
    let under_gv1 = with_mode(ClockMode::Gv1, run);
    let under_gv5 = with_mode(ClockMode::Gv5, run);
    assert_eq!(under_gv1, under_gv5);
}

/// A GV5 writer's commit is immediately visible to the next GV5 reader on
/// another thread (the reader's first epoch refresh must observe it): no
/// stale-epoch window survives a begin.
#[test]
fn gv5_commits_are_visible_to_fresh_readers() {
    with_mode(ClockMode::Gv5, || {
        let v = TVar::new(0i64);
        for round in 1..=100i64 {
            let vw = v.clone();
            std::thread::scope(|s| {
                s.spawn(move || atomic(|txn| vw.write(txn, round)));
            });
            let vr = v.clone();
            let seen =
                std::thread::scope(|s| s.spawn(move || atomic(|txn| vr.read(txn))).join().unwrap());
            assert_eq!(seen, round, "reader began after writer committed");
        }
    });
}
