//! # txfix-kvstore: a sharded transactional key-value store
//!
//! The production-shaped application tier the corpus scenarios are not:
//! a KV store built entirely out of the repo's substrates, so the fix
//! recipes, escalation ladder, crash checker and chaos layer finally
//! meet contended, skewed, mixed read/write load at macro scale.
//!
//! * [`KvStore`] — keys hash across shards; each shard owns a hash index
//!   of bucket maps in [`TVar`](txfix_stm::TVar)s, a redo log
//!   ([`txfix_wal::Wal`], fixed protocol), and a double-buffered
//!   checkpoint pair behind a [`page::BufferPool`].
//! * [`Mode`] — per-shard concurrency: `dev` (coarse revocable lock),
//!   `tm` (optimistic STM with backoff), `hybrid` (STM plus the
//!   escalation ladder on read-only ops).
//! * [`model`] — the deterministic-scheduler harness and BTreeMap-oracle
//!   history checker behind the differential tests.
//! * [`crash`] — the store-level crash-recovery sweep
//!   (`txfix crash kvstore`).

#![warn(missing_docs)]

pub mod crash;
pub mod model;
pub mod page;
mod store;

pub use store::{shard_placement, KvConfig, KvError, KvStore, Mode, OpStats, Reply};
