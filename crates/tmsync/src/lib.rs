//! # txfix-tmsync: synchronization extensions for transactional code
//!
//! The paper's fixes need more than plain atomic regions; this crate
//! supplies the three extensions its recipes rely on:
//!
//! - **Transactional condition variables** ([`TxCondvar`]): commit-before-
//!   wait semantics, required by 5 of the Mozilla fixes (Table 3).
//! - **Atomic/lock serialization** ([`SerialDomain`], [`SerialMutex`],
//!   [`serial_atomic`]): the global reader/writer scheme of §5.1 that makes
//!   an atomic region serializable against every lock critical section —
//!   the runtime of fix Recipe 4 (MySQL-I case study).
//! - **Ad hoc synchronization primitives** ([`SpinFlag`], [`OwnerFlag`]):
//!   the hand-rolled flag/ownership patterns the buggy applications used
//!   to avoid locks, kept here so scenarios and ablations can compare them
//!   against transactions (§6).
//!
//! Blocking `retry` itself lives in `txfix-stm` ([`Txn::retry`]); this
//! crate re-exports a [`guard`] helper for the common
//! "retry-unless-predicate" shape.
//!
//! [`Txn::retry`]: txfix_stm::Txn::retry

#![warn(missing_docs)]

mod adhoc;
mod condvar;
mod serial;

pub use adhoc::{OwnerFlag, SpinFlag};
pub use condvar::TxCondvar;
pub use serial::{serial_atomic, serial_atomic_with, SerialDomain, SerialMutex, SerialMutexGuard};

use txfix_stm::{StmResult, Txn};

/// Block the transaction (via `retry`) until `condition` is true.
///
/// # Errors
///
/// Returns the `retry` control-flow signal when the condition is false;
/// compose with `?`.
///
/// # Examples
///
/// ```
/// use txfix_stm::{atomic, TVar};
/// use txfix_tmsync::guard;
///
/// let stock = TVar::new(3u32);
/// let stock2 = stock.clone();
/// // Take one item, waiting (not spinning) while the shelf is empty.
/// atomic(move |txn| {
///     let n = stock2.read(txn)?;
///     guard(txn, n > 0)?;
///     stock2.write(txn, n - 1)
/// });
/// assert_eq!(stock.load(), 2);
/// ```
pub fn guard(txn: &mut Txn, condition: bool) -> StmResult<()> {
    if condition {
        Ok(())
    } else {
        txn.retry()
    }
}
