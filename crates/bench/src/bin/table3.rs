//! Regenerate Table 3: downcalls performed by the TM fixes' atomic blocks.

fn main() {
    let bugs = txfix_corpus::all_bugs();
    print!("{}", txfix_core::table3(&bugs));
}
