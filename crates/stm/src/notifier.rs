//! Global commit notification used by blocking `retry`.
//!
//! A transaction executing [`Txn::retry`](crate::Txn::retry) aborts and must
//! block until *some* variable it read changes. Rather than per-variable
//! waiter lists, we keep a single epoch counter bumped by every committed
//! writer; a retrying transaction re-validates its read-set snapshot on each
//! epoch change. This admits spurious wakeups (cheap) but no lost wakeups.

use parking_lot::{Condvar, Mutex};
use std::time::Duration;

pub(crate) struct Notifier {
    epoch: Mutex<u64>,
    cv: Condvar,
}

impl Notifier {
    pub(crate) const fn new() -> Notifier {
        Notifier { epoch: Mutex::new(0), cv: Condvar::new() }
    }

    /// Current epoch; capture *before* checking the condition you will wait
    /// on, so a concurrent commit is never missed.
    pub(crate) fn epoch(&self) -> u64 {
        *self.epoch.lock()
    }

    /// Announce that a commit published new values.
    pub(crate) fn notify(&self) {
        // The bump is a recordable sync event: `txfix analyze` checks
        // that it happens *after* the committing transaction's write-back
        // (a notify from inside a still-open transaction is a lost-wakeup
        // hazard — the waiter can revalidate against unpublished state).
        crate::trace::emit(crate::trace::EventKind::RetryNotify);
        let mut e = self.epoch.lock();
        *e += 1;
        drop(e);
        self.cv.notify_all();
        // Scheduled runs park retries on the scheduler, not on `cv`.
        crate::sched::signal(crate::sched::RES_NOTIFIER);
    }

    /// Block until the epoch advances past `seen`, or `timeout` elapses.
    /// Returns `true` if the epoch advanced.
    pub(crate) fn wait_past(&self, seen: u64, timeout: Duration) -> bool {
        let mut e = self.epoch.lock();
        if *e > seen {
            return true;
        }
        self.cv.wait_for(&mut e, timeout);
        *e > seen
    }
}

static NOTIFIER: Notifier = Notifier::new();

pub(crate) fn global() -> &'static Notifier {
    &NOTIFIER
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn wait_past_returns_immediately_if_epoch_already_advanced() {
        let n = Notifier::new();
        let seen = n.epoch();
        n.notify();
        let start = Instant::now();
        assert!(n.wait_past(seen, Duration::from_secs(5)));
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn wait_past_times_out_without_notification() {
        let n = Notifier::new();
        let seen = n.epoch();
        assert!(!n.wait_past(seen, Duration::from_millis(20)));
    }

    #[test]
    fn notify_wakes_concurrent_waiter() {
        let n = std::sync::Arc::new(Notifier::new());
        let seen = n.epoch();
        let n2 = n.clone();
        let h = std::thread::spawn(move || n2.wait_past(seen, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(10));
        n.notify();
        assert!(h.join().unwrap());
    }
}
