//! Global commit notification used by blocking `retry`.
//!
//! A transaction executing [`Txn::retry`](crate::Txn::retry) aborts and must
//! block until *some* variable it read changes. Rather than per-variable
//! waiter lists, we keep a single epoch counter bumped by every committed
//! writer; a retrying transaction re-validates its read-set snapshot on each
//! epoch change. This admits spurious wakeups (cheap) but no lost wakeups.
//!
//! The epoch lives in an atomic and the mutex/condvar pair is only touched
//! when a waiter is registered: the common case — a writing commit with
//! nobody retrying — is one uncontended `fetch_add` plus one load, not a
//! mutex round-trip. The waiter counter and the epoch bump are both
//! `SeqCst`, forming the classic Dekker pair: either the notifier sees the
//! waiter (and takes the slow path through the mutex), or the waiter's
//! epoch re-check after registering sees the bump.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

pub(crate) struct Notifier {
    epoch: AtomicU64,
    waiters: AtomicU64,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Notifier {
    pub(crate) const fn new() -> Notifier {
        Notifier {
            epoch: AtomicU64::new(0),
            waiters: AtomicU64::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Current epoch; capture *before* checking the condition you will wait
    /// on, so a concurrent commit is never missed.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Announce that a commit published new values.
    pub(crate) fn notify(&self) {
        // The bump is a recordable sync event: `txfix analyze` checks
        // that it happens *after* the committing transaction's write-back
        // (a notify from inside a still-open transaction is a lost-wakeup
        // hazard — the waiter can revalidate against unpublished state).
        crate::trace::emit(crate::trace::EventKind::RetryNotify);
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            // Lock-and-drop before notifying: a waiter that saw the old
            // epoch is either already in `wait` (receives the notify) or
            // still holds the mutex (will re-check the epoch and see the
            // bump before it can wait).
            drop(self.lock.lock());
            self.cv.notify_all();
        }
        // Scheduled runs park retries on the scheduler, not on `cv`.
        crate::sched::signal(crate::sched::RES_NOTIFIER);
    }

    /// Block until the epoch advances past `seen`, or `timeout` elapses.
    /// Returns `true` if the epoch advanced.
    pub(crate) fn wait_past(&self, seen: u64, timeout: Duration) -> bool {
        if self.epoch.load(Ordering::SeqCst) > seen {
            return true;
        }
        // Saturate absurd timeouts instead of panicking on Instant overflow.
        let deadline = Instant::now()
            .checked_add(timeout)
            .unwrap_or_else(|| Instant::now() + Duration::from_secs(60 * 60 * 24 * 365));
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let mut g = self.lock.lock();
        let advanced = loop {
            // Re-check after registering (Dekker: see module docs) and
            // after every wakeup, spurious or not.
            if self.epoch.load(Ordering::SeqCst) > seen {
                break true;
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                break false;
            };
            self.cv.wait_for(&mut g, remaining);
        };
        drop(g);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        advanced
    }
}

static NOTIFIER: Notifier = Notifier::new();

pub(crate) fn global() -> &'static Notifier {
    &NOTIFIER
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_past_returns_immediately_if_epoch_already_advanced() {
        let n = Notifier::new();
        let seen = n.epoch();
        n.notify();
        let start = Instant::now();
        assert!(n.wait_past(seen, Duration::from_secs(5)));
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn wait_past_times_out_without_notification() {
        let n = Notifier::new();
        let seen = n.epoch();
        assert!(!n.wait_past(seen, Duration::from_millis(20)));
    }

    #[test]
    fn notify_wakes_concurrent_waiter() {
        let n = std::sync::Arc::new(Notifier::new());
        let seen = n.epoch();
        let n2 = n.clone();
        let h = std::thread::spawn(move || n2.wait_past(seen, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(10));
        n.notify();
        assert!(h.join().unwrap());
    }

    #[test]
    fn notify_skips_the_mutex_with_no_waiters_but_still_bumps() {
        let n = Notifier::new();
        let e0 = n.epoch();
        for _ in 0..5 {
            n.notify();
        }
        assert_eq!(n.epoch(), e0 + 5);
    }
}
