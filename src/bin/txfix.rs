//! The `txfix` command-line tool: explore the study corpus, run bug
//! scenarios, and regenerate the paper's tables.
//!
//! ```sh
//! cargo run --bin txfix -- help
//! cargo run --bin txfix -- tables
//! cargo run --bin txfix -- bugs --unfixable
//! cargo run --bin txfix -- show Mozilla#54743
//! cargo run --bin txfix -- scenario apache_i --variant buggy
//! cargo run --bin txfix -- scenarios
//! cargo run --bin txfix -- analyze av_stats_race
//! cargo run --bin txfix -- lint --all
//! ```
//!
//! The sweep subcommands (`stress`, `chaos`, `explore`, `autofix`,
//! `crash`, `canary`, `list`) all run behind the shared
//! [`sweep::SweepRunner`] frame: common `--json`/`--seed`/`--out`
//! parsing, one artifact writer (canonical file plus a timestamped copy
//! under `results/`), one exit-code policy.

use std::fmt::Write as _;
use std::process::ExitCode;
use txfix::corpus::{
    all_bugs, all_scenarios, bug_by_id, bug_by_scenario, keys, scenario_by_key, summary_for,
    Variant,
};
use txfix::lint::{lint_summary, LintReport};
use txfix::recipes::json::ToJson;
use txfix::recipes::sweep::{self, Flag, SweepArgs, SweepExit, SweepOutput, SweepRunner};
use txfix::recipes::{
    analyze, preference, table1, table2, table3, tm_difficulty, Analysis, CorpusSummary, Preference,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("tables") => tables(),
        Some("summary") => summary(),
        Some("bugs") => bugs(args.get(1).map(String::as_str)),
        Some("show") => match args.get(1) {
            Some(id) => show(id),
            None => usage_error("show needs a bug id, e.g. `txfix show Mozilla#54743`"),
        },
        Some("scenarios") => scenarios(),
        Some("scenario") => scenario(&args[1..]),
        Some("analyze") => analyze_cmd(&args[1..]),
        Some("lint") => lint_cmd(&args[1..]),
        Some("stress") => sweep_cmd(&mut StressSweep::default(), &args[1..]),
        Some("kv") => sweep_cmd(&mut KvSweep::default(), &args[1..]),
        Some("chaos") => sweep_cmd(&mut ChaosSweep::default(), &args[1..]),
        Some("explore") => sweep_cmd(&mut ExploreSweep::default(), &args[1..]),
        Some("autofix") => sweep_cmd(&mut AutofixSweep::default(), &args[1..]),
        Some("crash") => sweep_cmd(&mut CrashSweep::default(), &args[1..]),
        Some("canary") => canary_cmd(&args[1..]),
        Some("list") => sweep_cmd(&mut ListSweep, &args[1..]),
        Some("help") | None => {
            usage();
            ExitCode::SUCCESS
        }
        Some(other) => usage_error(&format!("unknown command `{other}`")),
    }
}

/// Drive one sweep through the shared frame, mapping usage errors to the
/// common usage printer.
fn sweep_cmd(runner: &mut dyn SweepRunner, args: &[String]) -> ExitCode {
    match sweep::run_sweep(runner, args) {
        SweepExit::Done(code) => code,
        SweepExit::Usage(msg) => usage_error(&msg),
    }
}

fn usage() {
    println!(
        "txfix — Applying Transactional Memory to Concurrency Bugs (ASPLOS 2012 reproduction)\n\
         \n\
         USAGE: txfix <command> [args]\n\
         \n\
         Every sweep command also accepts --json (print the report document),\n\
         --out PATH (override the canonical artifact path), and writes a\n\
         timestamped copy of its artifact under results/.\n\
         \n\
         COMMANDS:\n\
         \x20 tables                       print the study's Tables 1-3\n\
         \x20 summary                      print the headline aggregates\n\
         \x20 bugs [--fixable|--unfixable|--implemented]\n\
         \x20                              list the 60-bug corpus (optionally filtered)\n\
         \x20 show <bug-id>                full analysis of one bug\n\
         \x20 scenarios                    list the 18 executable bug reproductions\n\
         \x20 scenario <key> [--variant buggy|dev|tm]\n\
         \x20                              run a reproduction (default: all three variants)\n\
         \x20 analyze <key> [--variant buggy|dev|tm] [--json]\n\
         \x20                              run a variant (default: buggy) under the trace\n\
         \x20                              recorder and report detected bugs with suggested\n\
         \x20                              fix recipes; exits nonzero on findings\n\
         \x20 lint [<key>|--all] [--variant buggy|dev|tm] [--json]\n\
         \x20                              statically analyze critical-section summaries\n\
         \x20                              (default: all three variants) and verify the\n\
         \x20                              synthesized fix recipes; exits nonzero on findings\n\
         \x20 stress [<key>|--all] [--secs N] [--threads 1,2,4,8] [--seed S]\n\
         \x20        [--clock gv1|gv5|both]\n\
         \x20                              sustain open-ended load against the dev and TM\n\
         \x20                              fix variants under each version-clock scheme,\n\
         \x20                              report throughput / abort rate / latency\n\
         \x20                              percentiles, and write BENCH_stm.json\n\
         \x20 kv [dev|tm|hybrid|--all] [--shards 2,4] [--theta T] [--mix G:P:D:S]\n\
         \x20    [--clock gv1|gv5] [--threads N] [--ops N]\n\
         \x20    [--keys N] [--users N] [--seed S]\n\
         \x20                              drive the sharded transactional KV store\n\
         \x20                              (dev locks / TM / hybrid escalation) with the\n\
         \x20                              open-loop Zipfian workload under the\n\
         \x20                              deterministic scheduler; reports virtual-time\n\
         \x20                              throughput, abort/escalation counts and latency\n\
         \x20                              percentiles per mode x shard count, verifies\n\
         \x20                              checkpoint+WAL recovery per cell, and writes\n\
         \x20                              BENCH_kv.json; bit-for-bit reproducible per seed\n\
         \x20 chaos [<key>|--all] [--seed S] [--threads N] [--ops N]\n\
         \x20                              sweep seeded fault-injection schedules over the\n\
         \x20                              corpus scenarios (dev and tm) under concurrent\n\
         \x20                              load, assert invariants after every run, and\n\
         \x20                              write CHAOS_stm.json; exits nonzero on any\n\
         \x20                              violation; bit-for-bit reproducible per seed\n\
         \x20 explore [<key>|--all] [--variant buggy|dev|tm] [--strategy dfs|pct]\n\
         \x20         [--budget N] [--seed S]\n\
         \x20                              model-check scenario schedules under the\n\
         \x20                              deterministic scheduler: every buggy variant\n\
         \x20                              must break within budget (failing schedule\n\
         \x20                              minimized and printed), every fixed variant\n\
         \x20                              must survive all explored schedules; writes\n\
         \x20                              EXPLORE_stm.json; exits nonzero on violations\n\
         \x20 autofix [<key>|--all] [--strategy dfs|pct] [--budget N] [--seed S]\n\
         \x20                              infer atomic-region fixes from static findings,\n\
         \x20                              synthesize the TM patch, and verify it both\n\
         \x20                              statically and by schedule exploration; reports\n\
         \x20                              widenings vs the hand-written TM variant; writes\n\
         \x20                              AUTOFIX_stm.json; exits nonzero on any\n\
         \x20                              unverified fix\n\
         \x20 crash [<variant>|kvstore|--all] [--seed S] [--images N]\n\
         \x20                              sweep every crash point of the WAL workload:\n\
         \x20                              freeze the durable world at the point, take a\n\
         \x20                              seeded crash image, recover, and assert\n\
         \x20                              atomicity / durability / no-resurrection; the\n\
         \x20                              fixed protocol must be clean everywhere and the\n\
         \x20                              planted commit-before-fsync bug must be flagged;\n\
         \x20                              writes CRASH_stm.json; bit-for-bit reproducible\n\
         \x20                              per seed\n\
         \x20 canary [<canary>|--all] [--seed S]\n\
         \x20                              arm one planted detector bug at a time and run\n\
         \x20                              it through every detection layer (analyze, lint,\n\
         \x20                              explore, chaos, crash); writes the txfix-canary-v1\n\
         \x20                              capability matrix to CANARY_stm.json; exits\n\
         \x20                              nonzero if any canary goes uncaught (needs a\n\
         \x20                              build with `--features canary`)\n\
         \x20 list [--json]                the corpus capability map: every scenario key,\n\
         \x20                              its variants, and which detection layers cover it\n\
         \x20 help                         this message"
    );
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n");
    usage();
    ExitCode::FAILURE
}

fn tables() -> ExitCode {
    let bugs = all_bugs();
    println!("{}", table1(&bugs));
    println!("{}", table2(&bugs));
    println!("{}", table3(&bugs));
    ExitCode::SUCCESS
}

fn summary() -> ExitCode {
    let s = CorpusSummary::compute(&all_bugs());
    println!("bugs examined:                 {}", s.total);
    println!(
        "  deadlocks:                   {} ({} fixable)",
        s.deadlocks.total, s.deadlocks.fixable
    );
    println!(
        "  atomicity violations:        {} ({} fixable)",
        s.atomicity.total, s.atomicity.fixable
    );
    println!(
        "TM can fix:                    {} ({:.0}%)",
        s.fixable(),
        100.0 * s.fixable() as f64 / s.total as f64
    );
    println!("  by recipes 1 and 2 alone:    {}", s.fixed_by_simple_recipes);
    println!("  only by recipe 3:            {}", s.fixed_only_by_recipe3);
    println!("  simplified by recipe 3:      {}", s.simplified_by_recipe3);
    println!("  simplified by recipe 4:      {}", s.simplified_by_recipe4);
    println!(
        "TM fix judged preferable:      {} ({} DL / {} AV)",
        s.tm_preferred, s.tm_preferred_deadlock, s.tm_preferred_atomicity
    );
    println!(
        "implemented & tested fixes:    {} ({} DL / {} AV)",
        s.implemented, s.implemented_deadlock, s.implemented_atomicity
    );
    ExitCode::SUCCESS
}

fn bugs(filter: Option<&str>) -> ExitCode {
    let list = all_bugs();
    for b in &list {
        let a = analyze(b);
        let keep = match filter {
            Some("--fixable") => a.is_fixable(),
            Some("--unfixable") => !a.is_fixable(),
            Some("--implemented") => b.is_implemented(),
            Some(other) => return usage_error(&format!("unknown filter `{other}`")),
            None => true,
        };
        if !keep {
            continue;
        }
        let verdict = match &a {
            Analysis::Fixable(p) => format!("fix: {}", p.primary),
            Analysis::Unfixable(r) => format!("NOT FIXABLE: {r}"),
        };
        println!("{:18} {:8} {:20} {}", b.id, b.app.to_string(), b.kind.to_string(), verdict);
    }
    ExitCode::SUCCESS
}

fn show(id: &str) -> ExitCode {
    let Some(b) = bug_by_id(id) else {
        return usage_error(&format!("no bug with id `{id}` (try `txfix bugs`)"));
    };
    println!("{} — {} {}", b.id, b.app, b.kind);
    println!("  {}", b.summary);
    if b.synthetic_id {
        println!("  (id synthesized during dataset reconstruction; see DESIGN.md)");
    }
    println!(
        "  developers' fix: {} ({} LOC, {} attempt{})",
        b.dev_fix.difficulty,
        b.dev_fix.loc,
        b.dev_fix.attempts,
        if b.dev_fix.attempts == 1 { "" } else { "s" }
    );
    let a = analyze(&b);
    match &a {
        Analysis::Fixable(plan) => {
            println!("  TM fix: {}", plan.primary);
            if let Some(simpler) = plan.simplified_by {
                println!("    also simplified by {simpler}");
            }
            if let Some(d) = tm_difficulty(&b, &a) {
                println!("    difficulty: {d}");
            }
            match preference(&b, &a) {
                Some(Preference::Tm) => println!("    judged SIMPLER than the developers' fix"),
                Some(Preference::Developers) => {
                    println!("    developers' fix judged as easy or easier")
                }
                None => {}
            }
        }
        Analysis::Unfixable(r) => println!("  TM cannot fix this bug: {r}"),
    }
    let d = &b.chars.downcalls;
    if d.any() {
        let mut calls = Vec::new();
        if d.condvar {
            calls.push("condition variables");
        }
        if d.retry {
            calls.push("retry");
        }
        if d.io {
            calls.push("I/O");
        }
        if d.long_action {
            calls.push("long actions");
        }
        if d.library {
            calls.push("library calls");
        }
        println!("  atomic blocks contain: {}", calls.join(", "));
    }
    if let Some(key) = b.scenario {
        println!("  executable reproduction: `txfix scenario {key}`");
    }
    ExitCode::SUCCESS
}

fn scenarios() -> ExitCode {
    for s in all_scenarios() {
        println!("{:22} {}", s.key(), s.describe());
    }
    ExitCode::SUCCESS
}

fn analyze_cmd(args: &[String]) -> ExitCode {
    let Some(key) = args.first() else {
        return usage_error("analyze needs a key, e.g. `txfix analyze av_stats_race`");
    };
    let mut variant = Variant::Buggy;
    let mut json = false;
    let mut rest = args[1..].iter();
    while let Some(opt) = rest.next() {
        match opt.as_str() {
            "--variant" => match rest.next().map(String::as_str) {
                Some("buggy") => variant = Variant::Buggy,
                Some("dev") => variant = Variant::DevFix,
                Some("tm") => variant = Variant::TmFix,
                _ => return usage_error("--variant takes buggy|dev|tm"),
            },
            "--json" => json = true,
            other => return usage_error(&format!("unknown option `{other}`")),
        }
    }
    let Some(report) = txfix::analyze::analyze_scenario(key, variant) else {
        return usage_error(&format!("no scenario `{key}` (try `txfix scenarios`)"));
    };
    if json {
        println!("{}", report.to_json());
    } else {
        let bug_id = bug_by_scenario(key).map(|b| format!(" [{}]", b.id)).unwrap_or_default();
        println!(
            "scenario {}{} — {} variant: {} events recorded",
            report.scenario, bug_id, report.variant, report.events
        );
        match &report.outcome {
            txfix::corpus::Outcome::Correct => println!("  run outcome: clean"),
            txfix::corpus::Outcome::BugObserved(msg) => println!("  run outcome: BUG: {msg}"),
        }
        if report.findings.is_empty() {
            println!("  no findings");
        }
        for f in &report.findings {
            println!("  FINDING: {}", f.kind);
            println!("    {}", f.explanation);
        }
    }
    if report.has_findings() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn lint_cmd(args: &[String]) -> ExitCode {
    let mut key: Option<&str> = None;
    let mut all = false;
    let mut variants: Option<Vec<Variant>> = None;
    let mut json = false;
    let mut rest = args.iter();
    while let Some(opt) = rest.next() {
        match opt.as_str() {
            "--all" => all = true,
            "--variant" => match rest.next().map(String::as_str) {
                Some("buggy") => variants = Some(vec![Variant::Buggy]),
                Some("dev") => variants = Some(vec![Variant::DevFix]),
                Some("tm") => variants = Some(vec![Variant::TmFix]),
                _ => return usage_error("--variant takes buggy|dev|tm"),
            },
            "--json" => json = true,
            other if !other.starts_with('-') && key.is_none() => key = Some(other),
            other => return usage_error(&format!("unknown option `{other}`")),
        }
    }
    let selected: Vec<&str> = if all {
        keys::ALL.to_vec()
    } else if let Some(k) = key {
        vec![k]
    } else {
        return usage_error("lint needs a scenario key or --all, e.g. `txfix lint av_stats_race`");
    };
    let variants =
        variants.unwrap_or_else(|| vec![Variant::Buggy, Variant::DevFix, Variant::TmFix]);

    let mut reports = Vec::new();
    for k in &selected {
        for &v in &variants {
            let Some(summary) = summary_for(k, v) else {
                return usage_error(&format!("no scenario `{k}` (try `txfix scenarios`)"));
            };
            let analysis = bug_by_scenario(k).map(|b| analyze(&b));
            match lint_summary(&summary, analysis.as_ref()) {
                Ok(r) => reports.push(r),
                Err(e) => {
                    eprintln!("error: summary for {k} is malformed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    if json {
        let doc = txfix::recipes::json::Json::list(reports.iter().map(ToJson::to_json_value));
        println!("{}", doc.to_json());
    } else {
        for r in &reports {
            let bug_id = bug_by_scenario(&r.scenario).map(|b| format!(" [{}]", b.id));
            println!(
                "scenario {}{} — {} variant: {} paths modeled",
                r.scenario,
                bug_id.unwrap_or_default(),
                r.variant,
                r.paths
            );
            if r.findings.is_empty() {
                println!("  no findings");
            }
            for f in &r.findings {
                println!("  FINDING: {}", f.hazard);
                println!("    {}", f.explanation);
                for fix in &f.fixes {
                    let status = if fix.verified { "statically verified" } else { "NOT verified" };
                    println!("    fix: {} — {status}", fix.recipe);
                    for h in &fix.residual {
                        println!("      residual: {h}");
                    }
                    for h in &fix.introduced {
                        println!("      introduced: {h}");
                    }
                }
            }
        }
    }
    if reports.iter().any(LintReport::has_findings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

// ---- sweep commands -------------------------------------------------------

#[derive(Default)]
struct StressSweep {
    cfg: txfix::bench::stress::StressConfig,
}

impl SweepRunner for StressSweep {
    fn name(&self) -> &'static str {
        "stress"
    }

    fn artifact(&self) -> Option<&'static str> {
        Some("BENCH_stm.json")
    }

    fn flag(&mut self, flag: &str, value: Option<&str>) -> Result<Flag, String> {
        use txfix::stm::ClockMode;
        match flag {
            "--secs" => match value.and_then(|s| s.parse::<f64>().ok()) {
                Some(s) if s > 0.0 => {
                    self.cfg.secs = s;
                    Ok(Flag::SeenWithValue)
                }
                _ => Err("--secs takes a positive number".into()),
            },
            "--threads" => {
                let parsed: Option<Vec<usize>> = value
                    .map(|list| list.split(',').map(|t| t.trim().parse::<usize>().ok()).collect())
                    .unwrap_or(None);
                match parsed {
                    Some(t) if !t.is_empty() && t.iter().all(|&n| n > 0) => {
                        self.cfg.threads = t;
                        Ok(Flag::SeenWithValue)
                    }
                    _ => Err("--threads takes a comma-separated list, e.g. 1,2,4,8".into()),
                }
            }
            "--clock" => {
                match value {
                    Some("both") => self.cfg.clocks = vec![ClockMode::Gv1, ClockMode::Gv5],
                    Some(name) => match ClockMode::parse(name) {
                        Some(c) => self.cfg.clocks = vec![c],
                        None => return Err("--clock takes gv1|gv5|both".into()),
                    },
                    None => return Err("--clock takes gv1|gv5|both".into()),
                }
                Ok(Flag::SeenWithValue)
            }
            _ => Ok(Flag::Unknown),
        }
    }

    fn select(&mut self, args: &SweepArgs) -> Result<(), String> {
        use txfix::bench::stress;
        if args.all {
            return Ok(());
        }
        if args.keys.is_empty() {
            return Err("stress needs a scenario key or --all, e.g. `txfix stress --all`".into());
        }
        let mut selected = Vec::new();
        for k in &args.keys {
            let Some(&k) = stress::SCENARIOS.iter().find(|&&s| s == k) else {
                return Err(format!(
                    "no stress scenario `{k}` (available: {})",
                    stress::SCENARIOS.join(", ")
                ));
            };
            selected.push(k);
        }
        self.cfg.scenarios = selected;
        Ok(())
    }

    fn execute(&mut self, args: &SweepArgs) -> Result<SweepOutput, String> {
        use txfix::bench::stress;
        if let Some(s) = args.seed {
            self.cfg.seed = s;
        }
        let runs = stress::run_stress(&self.cfg);
        let rendered = stress::stress_report(&self.cfg, &runs).to_json();
        let mut table = format!(
            "{:22} {:4} {:5} {:>3}  {:>12}  {:>9}  {:>10}  {:>10}  {:>7}",
            "scenario", "var", "clock", "thr", "ops/s", "aborts", "p50", "p99", "abort%"
        );
        for r in &runs {
            let _ = write!(
                table,
                "\n{:22} {:4} {:5} {:>3}  {:>12.0}  {:>9}  {:>8}ns  {:>8}ns  {:>6.2}%",
                r.scenario,
                r.variant,
                r.clock,
                r.threads,
                r.ops_per_sec,
                r.aborts,
                r.p50_ns,
                r.p99_ns,
                r.abort_rate * 100.0
            );
        }
        Ok(SweepOutput { rendered, table, ok: true, failure: "" })
    }
}

struct KvSweep {
    cfg: txfix::bench::kv::KvBenchConfig,
}

impl Default for KvSweep {
    fn default() -> KvSweep {
        use txfix::bench::kv::{KvBenchConfig, DEFAULT_SEED};
        // `select` fills in the swept modes; everything else starts at the
        // committed-artifact defaults.
        KvSweep { cfg: KvBenchConfig { modes: Vec::new(), ..KvBenchConfig::full(DEFAULT_SEED) } }
    }
}

impl SweepRunner for KvSweep {
    fn name(&self) -> &'static str {
        "kv"
    }

    fn artifact(&self) -> Option<&'static str> {
        Some("BENCH_kv.json")
    }

    fn flag(&mut self, flag: &str, value: Option<&str>) -> Result<Flag, String> {
        use txfix::bench::workload::Mix;
        use txfix::stm::ClockMode;
        match flag {
            "--shards" => {
                let parsed: Option<Vec<usize>> = value
                    .map(|list| list.split(',').map(|t| t.trim().parse::<usize>().ok()).collect())
                    .unwrap_or(None);
                match parsed {
                    Some(s) if !s.is_empty() && s.iter().all(|&n| n > 0) => {
                        self.cfg.shard_counts = s;
                        Ok(Flag::SeenWithValue)
                    }
                    _ => Err("--shards takes a comma-separated list, e.g. 2,4".into()),
                }
            }
            "--theta" => match value.and_then(|s| s.parse::<f64>().ok()) {
                Some(t) if (0.0..=8.0).contains(&t) => {
                    self.cfg.workload.theta = t;
                    Ok(Flag::SeenWithValue)
                }
                _ => Err("--theta takes a skew in 0..=8, e.g. 0.9".into()),
            },
            "--mix" => match value.and_then(Mix::parse) {
                Some(m) => {
                    self.cfg.workload.mix = m;
                    Ok(Flag::SeenWithValue)
                }
                None => Err("--mix takes get:put:delete:scan weights, e.g. 80:15:3:2".into()),
            },
            "--clock" => match value.and_then(ClockMode::parse) {
                Some(c) => {
                    self.cfg.clock = c;
                    Ok(Flag::SeenWithValue)
                }
                None => Err("--clock takes gv1|gv5".into()),
            },
            "--threads" => match value.and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n > 0 => {
                    self.cfg.threads = n;
                    Ok(Flag::SeenWithValue)
                }
                _ => Err("--threads takes a positive integer".into()),
            },
            "--ops" => match value.and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n > 0 => {
                    self.cfg.ops_per_thread = n;
                    Ok(Flag::SeenWithValue)
                }
                _ => Err("--ops takes a positive integer".into()),
            },
            "--keys" => match value.and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n > 0 => {
                    self.cfg.workload.keys = n;
                    Ok(Flag::SeenWithValue)
                }
                _ => Err("--keys takes a positive integer".into()),
            },
            "--users" => match value.and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n > 0 => {
                    self.cfg.workload.users = n;
                    Ok(Flag::SeenWithValue)
                }
                _ => Err("--users takes a positive integer".into()),
            },
            _ => Ok(Flag::Unknown),
        }
    }

    fn select(&mut self, args: &SweepArgs) -> Result<(), String> {
        use txfix::kvstore::Mode;
        if args.all {
            self.cfg.modes = Mode::ALL.to_vec();
            return Ok(());
        }
        if args.keys.is_empty() {
            return Err("kv needs a mode or --all, e.g. `txfix kv --all`".into());
        }
        for k in &args.keys {
            let Some(m) = Mode::parse(k) else {
                return Err(format!(
                    "no kv mode `{k}` (available: {})",
                    Mode::ALL.map(Mode::name).join(", ")
                ));
            };
            self.cfg.modes.push(m);
        }
        Ok(())
    }

    fn execute(&mut self, args: &SweepArgs) -> Result<SweepOutput, String> {
        use txfix::bench::kv;
        if let Some(s) = args.seed {
            self.cfg.seed = s;
        }
        let cells = kv::run_kv_bench(&self.cfg);
        let report = kv::kv_report(&self.cfg, cells);
        Ok(SweepOutput {
            rendered: report.to_json(),
            table: report.table(),
            ok: report.ok,
            failure: "kv sweep: a cell did not run clean or did not recover",
        })
    }
}

#[derive(Default)]
struct ChaosSweep {
    cfg: txfix::bench::chaos::ChaosConfig,
}

impl SweepRunner for ChaosSweep {
    fn name(&self) -> &'static str {
        "chaos"
    }

    fn artifact(&self) -> Option<&'static str> {
        Some("CHAOS_stm.json")
    }

    fn flag(&mut self, flag: &str, value: Option<&str>) -> Result<Flag, String> {
        match flag {
            "--threads" => match value.and_then(|s| s.parse::<usize>().ok()) {
                Some(t) if t > 0 => {
                    self.cfg.threads = t;
                    Ok(Flag::SeenWithValue)
                }
                _ => Err("--threads takes a positive integer".into()),
            },
            "--ops" => match value.and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n > 0 => {
                    self.cfg.ops_per_thread = n;
                    Ok(Flag::SeenWithValue)
                }
                _ => Err("--ops takes a positive integer".into()),
            },
            _ => Ok(Flag::Unknown),
        }
    }

    fn select(&mut self, args: &SweepArgs) -> Result<(), String> {
        use txfix::bench::chaos;
        if args.all {
            return Ok(());
        }
        if args.keys.is_empty() {
            return Err("chaos needs a scenario key or --all, e.g. `txfix chaos --all`".into());
        }
        let mut selected = Vec::new();
        for k in &args.keys {
            let Some(&k) = chaos::SCENARIOS.iter().find(|&&s| s == k) else {
                return Err(format!(
                    "no chaos scenario `{k}` (available: {})",
                    chaos::SCENARIOS.join(", ")
                ));
            };
            selected.push(k);
        }
        self.cfg.scenarios = selected;
        Ok(())
    }

    fn execute(&mut self, args: &SweepArgs) -> Result<SweepOutput, String> {
        use txfix::bench::chaos;
        if let Some(s) = args.seed {
            self.cfg.seed = s;
        }
        let runs = chaos::run_chaos(&self.cfg);
        let rendered = chaos::chaos_report(&self.cfg, &runs).to_json();
        let mut table = format!(
            "{:22} {:14} {:4} {:>3}  {:>7}  verdict",
            "scenario", "schedule", "var", "thr", "ops"
        );
        for r in &runs {
            let verdict = if r.passed() { "ok".to_string() } else { r.violations.join("; ") };
            let _ = write!(
                table,
                "\n{:22} {:14} {:4} {:>3}  {:>7}  {}",
                r.scenario, r.schedule, r.variant, r.threads, r.ops, verdict
            );
        }
        Ok(SweepOutput {
            rendered,
            table,
            ok: runs.iter().all(chaos::ChaosRun::passed),
            failure: "chaos sweep observed invariant violations",
        })
    }
}

#[derive(Default)]
struct ExploreSweep {
    cfg: txfix::explore::ExploreConfig,
    variants: Option<Vec<Variant>>,
}

impl SweepRunner for ExploreSweep {
    fn name(&self) -> &'static str {
        "explore"
    }

    fn artifact(&self) -> Option<&'static str> {
        Some("EXPLORE_stm.json")
    }

    fn flag(&mut self, flag: &str, value: Option<&str>) -> Result<Flag, String> {
        use txfix::explore;
        match flag {
            "--variant" => match value.and_then(explore::variant_parse) {
                Some(v) => {
                    self.variants = Some(vec![v]);
                    Ok(Flag::SeenWithValue)
                }
                None => Err("--variant takes buggy|dev|tm".into()),
            },
            "--strategy" => match value.and_then(explore::Strategy::parse) {
                Some(s) => {
                    self.cfg.strategy = s;
                    Ok(Flag::SeenWithValue)
                }
                None => Err("--strategy takes dfs|pct".into()),
            },
            "--budget" => match value.and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n > 0 => {
                    self.cfg.budget = n;
                    Ok(Flag::SeenWithValue)
                }
                _ => Err("--budget takes a positive integer".into()),
            },
            _ => Ok(Flag::Unknown),
        }
    }

    fn select(&mut self, args: &SweepArgs) -> Result<(), String> {
        if args.all || !args.keys.is_empty() {
            return Ok(());
        }
        let available = txfix::corpus::scheduled_scenarios()
            .iter()
            .map(|s| s.key().to_string())
            .collect::<Vec<_>>();
        Err(format!("explore needs a scenario key or --all (available: {})", available.join(", ")))
    }

    fn execute(&mut self, args: &SweepArgs) -> Result<SweepOutput, String> {
        use txfix::explore;
        if let Some(s) = args.seed {
            self.cfg.seed = s;
        }
        let variants = self.variants.clone().unwrap_or_else(|| Variant::ALL.to_vec());
        let selection: Option<&[String]> = if args.all { None } else { Some(args.keys.as_slice()) };
        let report = explore::explore_corpus(selection, &variants, &self.cfg)?;
        let rendered = report.to_json();
        let mut table = format!(
            "{:18} {:5} {:>9} {:>7} {:>8}  verdict",
            "scenario", "var", "schedules", "pruned", "exhaust"
        );
        for e in &report.entries {
            let verdict = match (&e.failure, e.ok) {
                (Some(f), true) => format!(
                    "bug @ schedule {} (depth {}, {} preemptions): {}",
                    f.found_after, f.depth, f.preemptions, f.message
                ),
                (Some(f), false) => {
                    format!("FIXED VARIANT BROKE: {} [trace {}]", f.message, f.trace)
                }
                (None, true) => "clean".to_string(),
                (None, false) => "NO BUG FOUND within budget".to_string(),
            };
            let _ = write!(
                table,
                "\n{:18} {:5} {:>9} {:>7} {:>8}  {}",
                e.key,
                e.variant,
                e.schedules,
                e.pruned,
                if e.exhausted { "yes" } else { "no" },
                verdict
            );
            if let (Some(f), true) = (&e.failure, e.ok) {
                let _ = write!(
                    table,
                    "\n{:55}replay: --strategy {} --seed {} trace {}",
                    "", report.strategy, report.seed, f.trace
                );
            }
        }
        Ok(SweepOutput {
            rendered,
            table,
            ok: report.ok(),
            failure: "exploration expectations not met",
        })
    }
}

#[derive(Default)]
struct AutofixSweep {
    cfg: txfix::explore::ExploreConfig,
}

impl SweepRunner for AutofixSweep {
    fn name(&self) -> &'static str {
        "autofix"
    }

    fn artifact(&self) -> Option<&'static str> {
        Some("AUTOFIX_stm.json")
    }

    fn flag(&mut self, flag: &str, value: Option<&str>) -> Result<Flag, String> {
        use txfix::explore;
        match flag {
            "--strategy" => match value.and_then(explore::Strategy::parse) {
                Some(s) => {
                    self.cfg.strategy = s;
                    Ok(Flag::SeenWithValue)
                }
                None => Err("--strategy takes dfs|pct".into()),
            },
            "--budget" => match value.and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n > 0 => {
                    self.cfg.budget = n;
                    Ok(Flag::SeenWithValue)
                }
                _ => Err("--budget takes a positive integer".into()),
            },
            _ => Ok(Flag::Unknown),
        }
    }

    fn select(&mut self, args: &SweepArgs) -> Result<(), String> {
        if args.all || !args.keys.is_empty() {
            return Ok(());
        }
        Err(format!("autofix needs a scenario key or --all (available: {})", keys::ALL.join(", ")))
    }

    fn execute(&mut self, args: &SweepArgs) -> Result<SweepOutput, String> {
        use txfix::autofix;
        if let Some(s) = args.seed {
            self.cfg.seed = s;
        }
        let selection: Option<&[String]> = if args.all { None } else { Some(args.keys.as_slice()) };
        let report = autofix::autofix_corpus(selection, &self.cfg)?;
        let rendered = report.to_json();
        let mut table =
            format!("{:22} {:>6} {:>7} {:>8}  verdict", "scenario", "rounds", "static", "patched");
        for e in &report.entries {
            if let Some(err) = &e.error {
                let _ = write!(
                    table,
                    "\n{:22} {:>6} {:>7} {:>8}  INFERENCE FAILED: {err}",
                    e.key, "-", "-", "-"
                );
                continue;
            }
            let verdict = match (&e.patched.failure, &e.buggy.failure) {
                (Some(f), _) => format!("PATCH BROKE: {f}"),
                (None, Some(b)) => format!("verified (bug reproduced: {b})"),
                (None, None) => "verified (no counterexample within budget)".to_string(),
            };
            let _ = write!(
                table,
                "\n{:22} {:>6} {:>7} {:>8}  {}",
                e.key,
                e.rounds,
                if e.static_clean { "clean" } else { "DIRTY" },
                format!("{}s", e.patched.schedules),
                verdict
            );
            for (region, recipe) in e.regions.iter().zip(&e.recipes) {
                let _ = write!(table, "\n{:24}fix: {region}  [{recipe}]", "");
            }
            for w in &e.widenings {
                let _ = write!(
                    table,
                    "\n{:24}widened {}: inferred {{{}}} vs hand {{{}}}",
                    "",
                    w.path,
                    w.inferred.join(", "),
                    w.hand.join(", ")
                );
            }
        }
        Ok(SweepOutput {
            rendered,
            table,
            ok: report.ok(),
            failure: "some fixes failed verification",
        })
    }
}

struct CrashSweep {
    cfg: txfix::wal::checker::CrashConfig,
    /// `txfix crash kvstore` redirects the sweep at the KV store subject
    /// (its own artifact; `--all` stays WAL-only so CRASH_stm.json keeps
    /// its meaning).
    kvstore: bool,
}

impl Default for CrashSweep {
    fn default() -> CrashSweep {
        use txfix::wal::checker::{CrashConfig, DEFAULT_SEED};
        // `select` fills in the swept variants; everything else starts at
        // the full-matrix defaults.
        CrashSweep {
            cfg: CrashConfig { variants: Vec::new(), ..CrashConfig::full(DEFAULT_SEED) },
            kvstore: false,
        }
    }
}

impl SweepRunner for CrashSweep {
    fn name(&self) -> &'static str {
        "crash"
    }

    fn artifact(&self) -> Option<&'static str> {
        Some(if self.kvstore { "CRASH_kv.json" } else { "CRASH_stm.json" })
    }

    fn flag(&mut self, flag: &str, value: Option<&str>) -> Result<Flag, String> {
        match flag {
            "--images" => match value.and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n > 0 => {
                    self.cfg.images_per_point = n;
                    Ok(Flag::SeenWithValue)
                }
                _ => Err("--images takes a positive integer".into()),
            },
            _ => Ok(Flag::Unknown),
        }
    }

    fn select(&mut self, args: &SweepArgs) -> Result<(), String> {
        use txfix::wal::WalVariant;
        if args.all {
            self.cfg.variants = WalVariant::ALL.to_vec();
            return Ok(());
        }
        if args.keys.is_empty() {
            return Err("crash needs a WAL variant, `kvstore`, or --all".into());
        }
        if args.keys.iter().any(|k| k == "kvstore") {
            if args.keys.len() > 1 {
                return Err("`kvstore` is its own crash subject; don't mix it with WAL \
                            variants"
                    .into());
            }
            self.kvstore = true;
            return Ok(());
        }
        for k in &args.keys {
            let Some(v) = WalVariant::parse(k) else {
                return Err(format!(
                    "no crash subject `{k}` (available: {}, kvstore)",
                    WalVariant::ALL.map(WalVariant::name).join(", ")
                ));
            };
            self.cfg.variants.push(v);
        }
        Ok(())
    }

    fn execute(&mut self, args: &SweepArgs) -> Result<SweepOutput, String> {
        use txfix::wal::checker;
        if self.kvstore {
            use txfix::kvstore::crash::{run_kv_crash_check, KvCrashConfig, DEFAULT_SEED};
            let cfg = KvCrashConfig {
                images_per_point: self.cfg.images_per_point,
                ..KvCrashConfig::full(args.seed.unwrap_or(DEFAULT_SEED))
            };
            let report = run_kv_crash_check(&cfg);
            return Ok(SweepOutput {
                rendered: report.to_json(),
                table: report.table(),
                ok: report.ok,
                failure: "kv crash sweep: recovery invariants not met at some crash point",
            });
        }
        if let Some(s) = args.seed {
            self.cfg.seed = s;
        }
        let report = checker::run_crash_check(&self.cfg);
        Ok(SweepOutput {
            rendered: report.to_json(),
            table: report.table(),
            ok: report.ok,
            failure: "crash sweep: recovery invariants not met at some crash point",
        })
    }
}

/// The detection layers `txfix list` reports coverage for, in display
/// order.
const LIST_LAYERS: [&str; 7] =
    ["analyze", "lint", "explore", "chaos", "stress", "autofix", "crash"];

struct ListSweep;

impl SweepRunner for ListSweep {
    fn name(&self) -> &'static str {
        "list"
    }

    fn artifact(&self) -> Option<&'static str> {
        None
    }

    fn takes_seed(&self) -> bool {
        false
    }

    fn select(&mut self, args: &SweepArgs) -> Result<(), String> {
        if let Some(k) = args.keys.first() {
            return Err(format!("list takes no scenario selection (got `{k}`)"));
        }
        Ok(())
    }

    fn execute(&mut self, _args: &SweepArgs) -> Result<SweepOutput, String> {
        use txfix::bench::{chaos, stress};
        use txfix::corpus::scheduled_by_key;
        use txfix::recipes::json::Json;

        // Which layers cover which scenario. `analyze` (trace replay) and
        // `autofix` (region inference) sweep the whole corpus; `lint` needs
        // a declarative summary, `explore` a scheduled build, `chaos` and
        // `stress` an open-ended load harness. `crash` covers only the WAL
        // durability subject (below), never the in-memory corpus scenarios.
        let coverage = |key: &str| -> [bool; 7] {
            [
                true,
                summary_for(key, Variant::Buggy).is_some(),
                scheduled_by_key(key).is_some(),
                chaos::SCENARIOS.contains(&key),
                stress::SCENARIOS.contains(&key),
                true,
                false,
            ]
        };
        let variants = ["buggy", "dev", "tm"];
        // The crash sweep drives its own durable test subject rather than
        // a corpus scenario: the WAL-backed KV map, in both protocol
        // variants.
        let subject_key = "wal_durable_kv";
        let subject_variants: Vec<&str> =
            txfix::wal::WalVariant::ALL.iter().map(|v| v.name()).collect();
        let subject_cov = [false, false, false, false, false, false, true];
        // The sharded KV store (crates/kvstore): chaos via its seeded
        // fault-plan backdrop tests, stress via the `txfix kv` macro-bench,
        // crash via `txfix crash kvstore`. The static layers (analyze,
        // lint, explore, autofix) target corpus scenarios, not the store.
        let kv_key = "kvstore";
        let kv_variants: Vec<&str> = txfix::kvstore::Mode::ALL.iter().map(|m| m.name()).collect();
        let kv_cov = [false, false, false, true, true, false, true];

        let layer_obj = |cov: [bool; 7]| {
            Json::obj(LIST_LAYERS.iter().zip(cov).map(|(&l, c)| (l, Json::Bool(c))))
        };
        let doc = Json::obj([
            ("schema", Json::str("txfix-list-v1")),
            (
                "scenarios",
                Json::list(keys::ALL.iter().map(|&key| {
                    Json::obj([
                        ("key", Json::str(key)),
                        ("variants", Json::strings(variants)),
                        ("layers", layer_obj(coverage(key))),
                    ])
                })),
            ),
            (
                "subjects",
                Json::list([
                    Json::obj([
                        ("key", Json::str(subject_key)),
                        ("variants", Json::strings(subject_variants.iter().copied())),
                        ("layers", layer_obj(subject_cov)),
                    ]),
                    Json::obj([
                        ("key", Json::str(kv_key)),
                        ("variants", Json::strings(kv_variants.iter().copied())),
                        ("layers", layer_obj(kv_cov)),
                    ]),
                ]),
            ),
        ]);
        let mut table = format!(
            "{:22} {:25} {:>7} {:>4} {:>7} {:>5} {:>6} {:>7} {:>5}",
            "scenario",
            "variants",
            "analyze",
            "lint",
            "explore",
            "chaos",
            "stress",
            "autofix",
            "crash"
        );
        let mark = |c: bool| if c { "yes" } else { "-" };
        let mut row = |key: &str, vars: &str, cov: [bool; 7]| {
            let _ = write!(
                table,
                "\n{:22} {:25} {:>7} {:>4} {:>7} {:>5} {:>6} {:>7} {:>5}",
                key,
                vars,
                mark(cov[0]),
                mark(cov[1]),
                mark(cov[2]),
                mark(cov[3]),
                mark(cov[4]),
                mark(cov[5]),
                mark(cov[6]),
            );
        };
        for &key in keys::ALL.iter() {
            row(key, &variants.join(","), coverage(key));
        }
        row(subject_key, &subject_variants.join(","), subject_cov);
        row(kv_key, &kv_variants.join(","), kv_cov);
        Ok(SweepOutput { rendered: doc.to_json(), table, ok: true, failure: "" })
    }
}

#[cfg(feature = "canary")]
struct CanarySweep {
    swept: Vec<txfix::stm::canary::Canary>,
    seed: u64,
}

#[cfg(feature = "canary")]
impl Default for CanarySweep {
    fn default() -> CanarySweep {
        CanarySweep { swept: Vec::new(), seed: 0xC0FFEE }
    }
}

#[cfg(feature = "canary")]
impl SweepRunner for CanarySweep {
    fn name(&self) -> &'static str {
        "canary"
    }

    fn artifact(&self) -> Option<&'static str> {
        Some("CANARY_stm.json")
    }

    fn select(&mut self, args: &SweepArgs) -> Result<(), String> {
        use txfix::stm::canary::Canary;
        if args.all {
            self.swept = Canary::ALL.to_vec();
            return Ok(());
        }
        if args.keys.is_empty() {
            return Err("canary needs a canary name or --all, e.g. `txfix canary --all`".into());
        }
        for k in &args.keys {
            let Some(c) = Canary::parse(k) else {
                return Err(format!(
                    "no canary `{k}` (available: {})",
                    Canary::ALL.map(Canary::name).join(", ")
                ));
            };
            self.swept.push(c);
        }
        Ok(())
    }

    fn execute(&mut self, args: &SweepArgs) -> Result<SweepOutput, String> {
        use txfix::canary;
        if let Some(s) = args.seed {
            self.seed = s;
        }
        let report = canary::run_canaries(&self.swept, self.seed);
        let rendered = report.to_json();
        let mut table = format!("{:26} {:12} {:8} caught by", "canary", "class", "caught");
        for o in &report.outcomes {
            let by = o.caught_by();
            let _ = write!(
                table,
                "\n{:26} {:12} {:8} {}",
                o.canary.name(),
                canary::class_name(o.expected),
                if o.caught() { "yes" } else { "UNCAUGHT" },
                if by.is_empty() { "-".to_string() } else { by.join(", ") }
            );
            for p in &o.probes {
                let verdict = match (p.probed, p.caught) {
                    (_, true) => "caught",
                    (true, false) => "missed",
                    (false, false) => "not probed",
                };
                let _ = write!(table, "\n{:28}{:8} {:10} {}", "", p.layer, verdict, p.evidence);
            }
        }
        Ok(SweepOutput {
            rendered,
            table,
            ok: report.ok(),
            failure: "some canaries went uncaught by every detection layer",
        })
    }
}

#[cfg(feature = "canary")]
fn canary_cmd(args: &[String]) -> ExitCode {
    sweep_cmd(&mut CanarySweep::default(), args)
}

#[cfg(not(feature = "canary"))]
fn canary_cmd(_args: &[String]) -> ExitCode {
    eprintln!(
        "error: this build carries no canary layer (by design: default builds compile the \
         mutation sites out entirely).\nRebuild with `cargo run --features canary --bin txfix \
         -- canary --all` to run the sweep."
    );
    ExitCode::FAILURE
}

fn scenario(args: &[String]) -> ExitCode {
    let Some(key) = args.first() else {
        return usage_error("scenario needs a key, e.g. `txfix scenario apache_i`");
    };
    let Some(s) = scenario_by_key(key) else {
        return usage_error(&format!("no scenario `{key}` (try `txfix scenarios`)"));
    };
    let variants: Vec<Variant> = match args.get(1).map(String::as_str) {
        Some("--variant") => match args.get(2).map(String::as_str) {
            Some("buggy") => vec![Variant::Buggy],
            Some("dev") => vec![Variant::DevFix],
            Some("tm") => vec![Variant::TmFix],
            _ => return usage_error("--variant takes buggy|dev|tm"),
        },
        Some(other) => return usage_error(&format!("unknown option `{other}`")),
        None => Variant::ALL.to_vec(),
    };
    println!("{}: {}\n", s.key(), s.describe());
    for v in variants {
        let outcome = s.run(v);
        match outcome {
            txfix::corpus::Outcome::Correct => println!("  {v:13} -> clean"),
            txfix::corpus::Outcome::BugObserved(msg) => println!("  {v:13} -> BUG: {msg}"),
        }
    }
    ExitCode::SUCCESS
}
