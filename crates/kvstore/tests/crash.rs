//! End-to-end checks of the KV crash sweep: the store's recovery
//! invariants (per-shard atomicity, durability of acked batches, no
//! resurrection past a truncating checkpoint) hold at every crash point,
//! and the report is deterministic per seed.
//!
//! The crash-point registry and chaos layer are process-global, so every
//! test here serializes on [`GATE`]. The full matrix lives behind `txfix
//! crash kvstore`; these smokes run a reduced config per mode.

use std::sync::Mutex;
use txfix_core::json::ToJson;
use txfix_kvstore::crash::{run_kv_crash_check, KvCrashConfig, Schedule};
use txfix_kvstore::Mode;

static GATE: Mutex<()> = Mutex::new(());

fn reduced(mode: Mode, schedule: Schedule, seed: u64) -> KvCrashConfig {
    KvCrashConfig {
        images_per_point: 1,
        modes: vec![mode],
        schedules: vec![schedule],
        ..KvCrashConfig::full(seed)
    }
}

#[test]
fn every_mode_recovers_cleanly_at_every_crash_point() {
    let _g = GATE.lock().unwrap();
    for mode in Mode::ALL {
        let report = run_kv_crash_check(&reduced(mode, Schedule::Clean, 11));
        assert!(report.ok, "{} verdict:\n{}", mode.name(), report.table());
        let m = &report.modes[0];
        for s in &m.schedules {
            assert!(s.flagged.is_empty(), "{} flagged at {:?}", mode.name(), s.flagged);
            assert!(s.runs > 0, "sweep must actually visit crash points");
        }
    }
}

#[test]
fn recovery_survives_an_xcall_fault_backdrop() {
    let _g = GATE.lock().unwrap();
    let report = run_kv_crash_check(&reduced(Mode::Tm, Schedule::XcallFaults, 12));
    assert!(report.ok, "verdict:\n{}", report.table());
}

#[test]
fn the_kv_crash_report_is_deterministic_per_seed() {
    let _g = GATE.lock().unwrap();
    let cfg = reduced(Mode::Hybrid, Schedule::Clean, 13);
    let a = run_kv_crash_check(&cfg).to_json();
    let b = run_kv_crash_check(&cfg).to_json();
    assert_eq!(a, b);
    let c = run_kv_crash_check(&reduced(Mode::Hybrid, Schedule::Clean, 14)).to_json();
    assert_ne!(a, c, "a different seed must draw different crash images");
}
