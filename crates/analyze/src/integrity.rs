//! Detector-integrity passes: checks on the *runtime's own machinery*,
//! derived from the recorded trace.
//!
//! The other passes look for bugs in the program under test. These two
//! look for bugs in the detectors and the commit protocol itself — the
//! class of defect the canary harness (`txfix canary`) plants on purpose:
//!
//! - [`lockdep_gaps`]: re-derives the lock-order edge set from the trace
//!   and diffs it against what the live `txfix_txlock::lockdep` validator
//!   recorded during the same run. The two witness the same acquisitions
//!   from independent vantage points, so on a healthy run they agree
//!   exactly; an edge present in the trace but absent from the validator
//!   means lockdep's deadlock graph is silently incomplete, and any cycle
//!   through the missing edge would go unreported.
//! - [`premature_notify`]: flags a retry-notifier bump emitted by a
//!   thread whose transaction is still open. The healthy commit path
//!   publishes its write-back, emits `TxnCommit`, and only then notifies;
//!   a notify that precedes the commit lets a retrying waiter wake,
//!   revalidate against the still-unpublished state, and sleep through
//!   the only wakeup for the real update — a lost wakeup.

use std::collections::{BTreeSet, HashMap, HashSet};
use txfix_stm::trace::{self, EventKind, TraceEvent};

/// The lock-order edges derivable from `events`: sorted, deduplicated
/// `(held, acquiring)` name pairs, mirroring `lockdep::edges()`.
///
/// Edges are collected at both `LockAttempt` (blocking acquisitions
/// record their evidence before they can deadlock) and `LockAcquired`
/// (try-acquisitions emit no attempt event), matching when the live
/// validator records them. Locks carrying the external-object trace tag
/// never touch lockdep, so edges involving them are excluded.
pub fn trace_lock_edges(events: &[TraceEvent]) -> Vec<(String, String)> {
    let mut held: HashMap<u64, Vec<(u64, String)>> = HashMap::new();
    let mut edges: BTreeSet<(String, String)> = BTreeSet::new();
    let mut note = |held: &[(u64, String)], lock: u64, name: &str| {
        if trace::is_external_object(lock) {
            return;
        }
        for (hid, hname) in held {
            if *hid == lock || trace::is_external_object(*hid) {
                continue;
            }
            edges.insert((hname.clone(), name.to_owned()));
        }
    };
    for ev in events {
        match &ev.kind {
            EventKind::LockAttempt { lock, name, .. } => {
                note(held.entry(ev.thread).or_default(), *lock, name);
            }
            EventKind::LockAcquired { lock, name } => {
                let held = held.entry(ev.thread).or_default();
                note(held, *lock, name);
                held.push((*lock, name.clone()));
            }
            EventKind::LockReleased { lock } => {
                let held = held.entry(ev.thread).or_default();
                if let Some(pos) = held.iter().rposition(|(id, _)| id == lock) {
                    held.remove(pos);
                }
            }
            _ => {}
        }
    }
    edges.into_iter().collect()
}

/// Order edges the trace witnessed but the live validator did not record:
/// each is a silent hole in lockdep's deadlock graph. Empty on a healthy
/// run. `live_edges` is `lockdep::edges()` captured from the same run.
pub fn lockdep_gaps(
    events: &[TraceEvent],
    live_edges: &[(String, String)],
) -> Vec<(String, String)> {
    let live: HashSet<&(String, String)> = live_edges.iter().collect();
    trace_lock_edges(events).into_iter().filter(|e| !live.contains(e)).collect()
}

/// Whether any retry-notifier bump was emitted by a thread with a
/// still-open transaction (`TxnBegin` seen, no `TxnCommit`/`TxnAbort`
/// yet) — the lost-wakeup-prone notify-before-publish ordering.
pub fn premature_notify(events: &[TraceEvent]) -> bool {
    let mut open: HashMap<u64, u32> = HashMap::new();
    for ev in events {
        match &ev.kind {
            EventKind::TxnBegin { .. } => *open.entry(ev.thread).or_default() += 1,
            EventKind::TxnCommit { .. } | EventKind::TxnAbort { .. } => {
                if let Some(c) = open.get_mut(&ev.thread) {
                    *c = c.saturating_sub(1);
                }
            }
            EventKind::RetryNotify if open.get(&ev.thread).copied().unwrap_or(0) > 0 => {
                return true;
            }
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(thread: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { thread, kind }
    }

    fn acq(thread: u64, lock: u64, name: &str) -> TraceEvent {
        ev(thread, EventKind::LockAcquired { lock, name: name.into() })
    }

    fn rel(thread: u64, lock: u64) -> TraceEvent {
        ev(thread, EventKind::LockReleased { lock })
    }

    #[test]
    fn nested_acquisition_records_an_edge() {
        let edges = trace_lock_edges(&[acq(1, 1, "a"), acq(1, 2, "b"), rel(1, 2), rel(1, 1)]);
        assert_eq!(edges, vec![("a".into(), "b".into())]);
    }

    #[test]
    fn blocked_attempt_still_records_its_edge() {
        let edges = trace_lock_edges(&[
            acq(1, 1, "a"),
            ev(1, EventKind::LockAttempt { lock: 2, name: "b".into(), preemptible: false }),
        ]);
        assert_eq!(edges, vec![("a".into(), "b".into())]);
    }

    #[test]
    fn external_locks_are_excluded() {
        let tagged = 1u64 << 63 | 9;
        let edges = trace_lock_edges(&[
            acq(1, tagged, "ext"),
            acq(1, 2, "b"),
            rel(1, 2),
            rel(1, tagged),
            acq(2, 3, "c"),
            acq(2, tagged, "ext"),
        ]);
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn gaps_are_the_set_difference() {
        let events =
            [acq(1, 1, "a"), acq(1, 2, "b"), rel(1, 2), rel(1, 1), acq(2, 2, "b"), acq(2, 3, "c")];
        let live = vec![("a".to_string(), "b".to_string())];
        assert_eq!(lockdep_gaps(&events, &live), vec![("b".into(), "c".into())]);
        let all = vec![("a".to_string(), "b".to_string()), ("b".to_string(), "c".to_string())];
        assert!(lockdep_gaps(&events, &all).is_empty());
    }

    #[test]
    fn notify_after_commit_is_clean() {
        assert!(!premature_notify(&[
            ev(1, EventKind::TxnBegin { serial: 1 }),
            ev(1, EventKind::TxnCommit { serial: 1 }),
            ev(1, EventKind::RetryNotify),
        ]));
    }

    #[test]
    fn notify_inside_open_txn_is_flagged() {
        assert!(premature_notify(&[
            ev(1, EventKind::TxnBegin { serial: 1 }),
            ev(1, EventKind::RetryNotify),
            ev(1, EventKind::TxnCommit { serial: 1 }),
        ]));
    }

    #[test]
    fn notify_from_an_untracked_thread_is_clean() {
        assert!(!premature_notify(&[
            ev(1, EventKind::TxnBegin { serial: 1 }),
            ev(2, EventKind::RetryNotify),
            ev(1, EventKind::TxnCommit { serial: 1 }),
        ]));
    }
}
