//! Vector clocks over the recorder's dense thread ids.

/// A vector clock: one logical time per recorder thread id.
///
/// Thread ids from [`txfix_stm::trace::thread_id`] are dense and 1-based,
/// so the clock is a plain vector indexed by id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock {
    times: Vec<u64>,
}

impl VectorClock {
    /// The zero clock.
    pub fn new() -> VectorClock {
        VectorClock::default()
    }

    /// The component for `thread` (0 when never advanced).
    pub fn get(&self, thread: u64) -> u64 {
        self.times.get(thread as usize).copied().unwrap_or(0)
    }

    fn slot(&mut self, thread: u64) -> &mut u64 {
        let i = thread as usize;
        if self.times.len() <= i {
            self.times.resize(i + 1, 0);
        }
        &mut self.times[i]
    }

    /// Advance `thread`'s component by one.
    pub fn tick(&mut self, thread: u64) {
        *self.slot(thread) += 1;
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VectorClock) {
        for (i, &t) in other.times.iter().enumerate() {
            if t > 0 {
                let s = self.slot(i as u64);
                *s = (*s).max(t);
            }
        }
    }

    /// Whether `self` is pointwise ≤ `other` (happens-before or equal).
    pub fn le(&self, other: &VectorClock) -> bool {
        self.times.iter().enumerate().all(|(i, &t)| t <= other.get(i as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut c = VectorClock::new();
        assert_eq!(c.get(3), 0);
        c.tick(3);
        c.tick(3);
        assert_eq!(c.get(3), 2);
        assert_eq!(c.get(1), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.tick(1);
        a.tick(1);
        let mut b = VectorClock::new();
        b.tick(1);
        b.tick(2);
        a.join(&b);
        assert_eq!(a.get(1), 2);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn le_orders_causally_related_clocks() {
        let mut a = VectorClock::new();
        a.tick(1);
        let mut b = a.clone();
        b.tick(2);
        assert!(a.le(&b));
        assert!(!b.le(&a));
        let mut c = VectorClock::new();
        c.tick(3);
        assert!(!b.le(&c) && !c.le(&b), "concurrent clocks are unordered");
    }
}
