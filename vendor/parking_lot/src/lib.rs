//! Minimal std-backed reimplementation of the `parking_lot` API surface that
//! txfix uses. The build environment has no network access to crates.io, so
//! the workspace vendors this stand-in: same types, same method signatures,
//! same semantics (no poisoning, const constructors, guard-based condvar
//! waits), implemented on `std::sync`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

// std's Mutex/RwLock/Condvar have const `new`, so the const constructors
// here map straight through; poisoning is swallowed via `into_inner`.

/// A mutual exclusion primitive (non-poisoning facade over `std::sync::Mutex`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex in an unlocked state.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(g) }
    }

    /// Attempt to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable that waits on [`MutexGuard`]s directly.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Atomically release the guard's mutex and block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard already taken");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// As [`Condvar::wait`], giving up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard already taken");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar")
    }
}

/// Reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create an unlocked reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, blocking while a writer holds the lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Acquire the exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Attempt to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(RwLockReadGuard { inner: e.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempt to acquire the write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(RwLockWriteGuard { inner: e.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guard_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn rwlock_readers_coexist() {
        let l = RwLock::new(7u8);
        let a = l.read();
        let b = l.read();
        assert_eq!((*a, *b), (7, 7));
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
