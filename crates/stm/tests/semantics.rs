//! Integration tests for the fundamental STM guarantees: atomicity,
//! isolation, and the control-flow extensions (retry, restart, cancel,
//! irrevocability, hooks, kills, capacity).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use txfix_stm::{
    atomic, atomic_relaxed, BackoffPolicy, CapacityKind, StmResult, TVar, Txn, TxnError,
};

#[test]
fn transaction_result_is_returned() {
    let v = TVar::new(5u32);
    let doubled = atomic(|txn| {
        let x = v.read(txn)?;
        v.write(txn, x * 2)?;
        Ok(x * 2)
    });
    assert_eq!(doubled, 10);
    assert_eq!(v.load(), 10);
}

#[test]
fn writes_are_invisible_until_commit() {
    let v = TVar::new(0u32);
    let observed_mid_txn = Arc::new(AtomicU64::new(999));
    let inside = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        let v2 = v.clone();
        let inside2 = inside.clone();
        let release2 = release.clone();
        s.spawn(move || {
            atomic(move |txn| {
                v2.write(txn, 42)?;
                inside2.store(true, Ordering::SeqCst);
                // Hold the transaction open until the observer has looked.
                while !release2.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                Ok(())
            });
        });

        while !inside.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        observed_mid_txn.store(v.load() as u64, Ordering::SeqCst);
        release.store(true, Ordering::SeqCst);
    });

    assert_eq!(observed_mid_txn.load(Ordering::SeqCst), 0, "buffered write leaked");
    assert_eq!(v.load(), 42);
}

#[test]
fn concurrent_increments_do_not_lose_updates() {
    let counter = TVar::new(0u64);
    const THREADS: usize = 8;
    const PER_THREAD: usize = 500;
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let counter = counter.clone();
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    atomic(|txn| counter.modify(txn, |c| c + 1));
                }
            });
        }
    });
    assert_eq!(counter.load(), (THREADS * PER_THREAD) as u64);
}

#[test]
fn multi_var_invariant_is_never_violated() {
    // Classic bank transfer: total must be conserved in every snapshot.
    let a = TVar::new(1_000i64);
    let b = TVar::new(1_000i64);
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        for t in 0..4 {
            let (a, b) = (a.clone(), b.clone());
            s.spawn(move || {
                for i in 0..400 {
                    let amt = ((i * 7 + t * 13) % 50) as i64;
                    atomic(|txn| {
                        let x = a.read(txn)?;
                        let y = b.read(txn)?;
                        a.write(txn, x - amt)?;
                        b.write(txn, y + amt)
                    });
                }
            });
        }
        let (a, b) = (a.clone(), b.clone());
        let stop2 = stop.clone();
        s.spawn(move || {
            while !stop2.load(Ordering::SeqCst) {
                let total = atomic(|txn| {
                    let x = a.read(txn)?;
                    let y = b.read(txn)?;
                    Ok(x + y)
                });
                assert_eq!(total, 2_000, "transfer atomicity violated");
            }
        });
        // Scope join order: flag the observer once writers are done.
        for _ in 0..4 {}
        stop.store(true, Ordering::SeqCst);
    });
    assert_eq!(a.load() + b.load(), 2_000);
}

#[test]
fn read_own_writes() {
    let v = TVar::new(1u32);
    let seen = atomic(|txn| {
        v.write(txn, 7)?;
        v.read(txn)
    });
    assert_eq!(seen, 7);
}

#[test]
fn restart_reexecutes_the_body() {
    let v = TVar::new(0u32);
    let tries = Arc::new(AtomicU64::new(0));
    let tries2 = tries.clone();
    atomic(move |txn| {
        let n = tries2.fetch_add(1, Ordering::SeqCst);
        v.write(txn, n as u32)?;
        if n < 3 {
            return txn.restart();
        }
        Ok(())
    });
    assert_eq!(tries.load(Ordering::SeqCst), 4);
}

#[test]
fn cancel_discards_writes_and_reports_error() {
    let v = TVar::new(10u32);
    let r: Result<(), TxnError> = Txn::build()
        .try_run(|txn| {
            v.write(txn, 99)?;
            txn.cancel()
        })
        .map(|(v, _)| v);
    assert_eq!(r, Err(TxnError::Cancelled));
    assert_eq!(v.load(), 10, "cancelled transaction leaked a write");
}

#[test]
fn retry_blocks_until_a_read_var_changes() {
    let flag = TVar::new(false);
    let woke = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        let flag2 = flag.clone();
        let woke2 = woke.clone();
        s.spawn(move || {
            atomic(|txn| {
                if !flag2.read(txn)? {
                    return txn.retry();
                }
                Ok(())
            });
            woke2.store(true, Ordering::SeqCst);
        });

        std::thread::sleep(Duration::from_millis(30));
        assert!(!woke.load(Ordering::SeqCst), "retry returned before the flag changed");
        flag.store(true);
        for _ in 0..2000 {
            if woke.load(Ordering::SeqCst) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(woke.load(Ordering::SeqCst), "retry never woke up");
    });
}

#[test]
fn retry_limit_is_enforced() {
    let r: Result<(), TxnError> = Txn::build()
        .max_attempts(3)
        .backoff(BackoffPolicy::None)
        .try_run(|txn| txn.restart())
        .map(|(v, _)| v);
    assert_eq!(r, Err(TxnError::RetryLimit { attempts: 3 }));
}

#[test]
fn capacity_bound_is_reported() {
    let vars: Vec<TVar<u32>> = (0..8).map(TVar::new).collect();
    let r: Result<u32, TxnError> = Txn::build()
        .capacity(4, 4)
        .try_run(|txn| {
            let mut sum = 0;
            for v in &vars {
                sum += v.read(txn)?;
            }
            Ok(sum)
        })
        .map(|(v, _)| v);
    match r {
        Err(TxnError::Capacity { kind: CapacityKind::ReadSet, .. }) => {}
        other => panic!("expected read-set capacity error, got {other:?}"),
    }
}

#[test]
fn write_capacity_bound_is_reported() {
    let vars: Vec<TVar<u32>> = (0..8).map(TVar::new).collect();
    let r: Result<(), TxnError> = Txn::build()
        .capacity(64, 2)
        .try_run(|txn| {
            for v in &vars {
                v.write(txn, 1)?;
            }
            Ok(())
        })
        .map(|(v, _)| v);
    match r {
        Err(TxnError::Capacity { kind: CapacityKind::WriteSet, .. }) => {}
        other => panic!("expected write-set capacity error, got {other:?}"),
    }
}

#[test]
fn commit_hooks_run_once_in_order_only_on_commit() {
    let log = Arc::new(parking_lot::Mutex::new(Vec::<&'static str>::new()));
    let v = TVar::new(0u32);
    let first = Arc::new(AtomicBool::new(true));

    let log2 = log.clone();
    let first2 = first.clone();
    atomic(move |txn| {
        let log3 = log2.clone();
        let log4 = log2.clone();
        txn.on_commit(move || log3.lock().push("a"));
        txn.on_commit(move || log4.lock().push("b"));
        v.write(txn, 1)?;
        if first2.swap(false, Ordering::SeqCst) {
            // First attempt aborts: its hooks must NOT run.
            return txn.restart();
        }
        Ok(())
    });

    assert_eq!(*log.lock(), vec!["a", "b"]);
}

#[test]
fn abort_hooks_run_in_reverse_order_only_on_abort() {
    let log = Arc::new(parking_lot::Mutex::new(Vec::<&'static str>::new()));
    let first = Arc::new(AtomicBool::new(true));

    let log2 = log.clone();
    atomic(move |txn| {
        let l1 = log2.clone();
        let l2 = log2.clone();
        txn.on_abort(move || l1.lock().push("undo-1"));
        txn.on_abort(move || l2.lock().push("undo-2"));
        if first.swap(false, Ordering::SeqCst) {
            return txn.restart();
        }
        Ok(())
    });

    // Only the first (aborted) attempt contributes, in reverse order.
    assert_eq!(*log.lock(), vec!["undo-2", "undo-1"]);
}

#[test]
fn relaxed_transactions_run_unsafe_ops_exactly_once() {
    let effect_count = Arc::new(AtomicU64::new(0));
    let v = TVar::new(0u32);
    let ec = effect_count.clone();
    let (_, report) = Txn::build()
        .relaxed()
        .try_run(move |txn| {
            let ec = ec.clone();
            txn.unsafe_op(move || {
                ec.fetch_add(1, Ordering::SeqCst);
            })?;
            v.write(txn, 1)
        })
        .unwrap();
    assert_eq!(effect_count.load(Ordering::SeqCst), 1);
    assert!(report.committed_irrevocably);
}

#[test]
#[should_panic(expected = "unsafe operation inside an atomic transaction")]
fn unsafe_op_panics_in_atomic_kind() {
    atomic(|txn| txn.unsafe_op(|| ()));
}

#[test]
fn irrevocable_commit_publishes_writes() {
    let v = TVar::new(0u32);
    atomic_relaxed(|txn| {
        txn.become_irrevocable()?;
        v.write(txn, 5)
    });
    assert_eq!(v.load(), 5);
}

#[test]
fn irrevocable_excludes_other_commits_until_done() {
    // While one transaction is irrevocable, another thread's committing
    // transaction must block (not fail) and then succeed.
    let v = TVar::new(0u32);
    let w = TVar::new(0u32);
    let in_irrevocable = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let other_committed = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        {
            let v = v.clone();
            let in_irr = in_irrevocable.clone();
            let release = release.clone();
            s.spawn(move || {
                atomic_relaxed(|txn| {
                    txn.become_irrevocable()?;
                    in_irr.store(true, Ordering::SeqCst);
                    while !release.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                    v.write(txn, 1)
                });
            });
        }
        while !in_irrevocable.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        {
            let w = w.clone();
            let oc = other_committed.clone();
            s.spawn(move || {
                atomic(|txn| w.write(txn, 2));
                oc.store(true, Ordering::SeqCst);
            });
        }
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            !other_committed.load(Ordering::SeqCst),
            "commit was not excluded by the irrevocable transaction"
        );
        release.store(true, Ordering::SeqCst);
    });
    assert_eq!(v.load(), 1);
    assert_eq!(w.load(), 2);
}

#[test]
fn kill_handle_aborts_and_transaction_recovers() {
    let v = TVar::new(0u64);
    let v2 = v.clone();
    let killed_once = Arc::new(AtomicBool::new(false));
    let ko = killed_once.clone();
    let (_, report) = Txn::build()
        .try_run(move |txn| {
            if !ko.swap(true, Ordering::SeqCst) {
                // Simulate an external deadlock detector killing us mid-flight.
                txn.kill_handle().kill();
            }
            let x = v2.read(txn)?;
            v2.write(txn, x + 1)
        })
        .unwrap();
    assert!(report.attempts >= 2, "kill did not force a re-execution");
    assert!(report.preemptions >= 1);
    assert_eq!(v.load(), 1);
}

#[test]
fn panic_in_body_runs_abort_hooks() {
    let undone = Arc::new(AtomicBool::new(false));
    let undone2 = undone.clone();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        atomic(move |txn| -> StmResult<()> {
            let u = undone2.clone();
            txn.on_abort(move || u.store(true, Ordering::SeqCst));
            panic!("boom");
        })
    }));
    assert!(result.is_err());
    assert!(undone.load(Ordering::SeqCst), "abort hook skipped on panic");
}

#[test]
fn conflicting_transactions_serialize() {
    // Two transactions that read-modify-write the same pair in opposite
    // orders must still serialize (no deadlock, no lost update).
    let x = TVar::new(0u64);
    let y = TVar::new(0u64);
    std::thread::scope(|s| {
        let (x1, y1) = (x.clone(), y.clone());
        s.spawn(move || {
            for _ in 0..300 {
                atomic(|txn| {
                    let a = x1.read(txn)?;
                    let b = y1.read(txn)?;
                    x1.write(txn, a + 1)?;
                    y1.write(txn, b + 1)
                });
            }
        });
        let (x2, y2) = (x.clone(), y.clone());
        s.spawn(move || {
            for _ in 0..300 {
                atomic(|txn| {
                    let b = y2.read(txn)?;
                    let a = x2.read(txn)?;
                    y2.write(txn, b + 1)?;
                    x2.write(txn, a + 1)
                });
            }
        });
    });
    assert_eq!(x.load(), 600);
    assert_eq!(y.load(), 600);
}

#[test]
fn wait_on_commits_before_blocking() {
    use txfix_stm::WaitPoint;
    struct NeverBlocks;
    impl WaitPoint for NeverBlocks {
        fn prepare(&self) -> u64 {
            0
        }
        fn wait(&self, _ticket: u64) {}
    }

    let v = TVar::new(0u32);
    let first = Arc::new(AtomicBool::new(true));
    let wp = Arc::new(NeverBlocks);
    let first2 = first.clone();
    let v2 = v.clone();
    atomic(move |txn| {
        if first2.swap(false, Ordering::SeqCst) {
            v2.write(txn, 1)?;
            // The write above must be committed by wait_on even though the
            // body did not complete.
            return txn.wait_on(wp.clone());
        }
        Ok(())
    });
    assert_eq!(v.load(), 1, "wait_on discarded the pre-wait work");
}

#[test]
fn stats_record_commits_and_conflicts() {
    let before = txfix_stm::stats();
    let v = TVar::new(0u64);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let v = v.clone();
            s.spawn(move || {
                for _ in 0..200 {
                    atomic(|txn| v.modify(txn, |x| x + 1));
                }
            });
        }
    });
    let d = txfix_stm::stats().delta(&before);
    assert!(d.commits >= 800);
}
