//! Fixing an atomicity violation with one atomic block (paper §5.4.3,
//! Apache-II).
//!
//! ```sh
//! cargo run --example fix_an_atomicity_violation
//! ```
//!
//! Hammers Apache's buffered log writer from four threads. The shipped
//! code garbles the log; the developers' per-log lock and the Recipe 2
//! fix (one atomic block, flush as a deferred x-call) both keep it exact.

use txfix::apps::apache::buffered_log::{make_record, RECORD_LEN};
use txfix::apps::apache::{
    validate_log, BuggyBufferedLog, LockedBufferedLog, LogWriter, TmBufferedLog,
};
use txfix::xcall::SimFs;

const THREADS: usize = 4;
const RECORDS: u64 = 300;

fn hammer(log: &dyn LogWriter) {
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..RECORDS {
                    log.write_record(&make_record(t, i));
                }
            });
        }
    });
    log.flush();
}

fn main() {
    let fs = SimFs::new();
    let expected = THREADS * RECORDS as usize;

    let logs: Vec<Box<dyn LogWriter>> = vec![
        Box::new(BuggyBufferedLog::new(&fs, "buggy.log", 24 * RECORD_LEN, 2_000)),
        Box::new(LockedBufferedLog::new(&fs, "locked.log", 24 * RECORD_LEN)),
        Box::new(TmBufferedLog::new(&fs, "tm.log", 24 * RECORD_LEN)),
    ];

    println!("Writing {expected} records from {THREADS} threads through each variant:\n");
    for log in &logs {
        hammer(log.as_ref());
        let v = validate_log(&log.file().read_all());
        println!(
            "{:45} {:>5} valid records (expected {expected}), {} corrupted spans{}",
            log.variant_name(),
            v.valid_records,
            v.corrupted_spans,
            if v.is_violation(expected) { "  <-- ATOMICITY VIOLATION" } else { "" }
        );
    }

    println!("\nThe TM fix is five lines inside one function: read the buffer TVar, flush");
    println!("via a deferred x-call when full, append, write the TVar back. The");
    println!("developers' fix needed a new lock plus creation/management code elsewhere.");
}
