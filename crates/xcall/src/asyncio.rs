//! Commit-time asynchronous I/O with completion callbacks.
//!
//! This implements the extension the paper asks for in §5.3.2: Mozilla
//! bug#19421 holds a lock while loading a URL and runs a callback when the
//! load completes — unfixable with plain transactions, because a
//! transaction spanning the load would (especially when inevitable)
//! "prevent all other transactions from making progress. Having support
//! to issue asynchronous I/O and execute a callback upon I/O completion
//! within a transaction would help fixing this problem."
//!
//! [`AsyncIo`] provides exactly that shape:
//!
//! - [`x_submit`](AsyncIo::x_submit) inside a transaction *defers* the
//!   submission to commit time, so aborted transactions never issue the
//!   operation (at-most-once, like every deferred x-call);
//! - the operation runs on a completion worker, **outside** any
//!   transaction, so no lock or transaction spans the long latency;
//! - the completion callback also runs outside a transaction and
//!   typically opens its *own* short atomic block to publish the result —
//!   splitting the one impossible long atomic region into two legal short
//!   ones around an async gap.

use parking_lot::{Condvar, Mutex};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};
use txfix_stm::chaos;
use txfix_stm::{StmResult, Txn};

type Job = Box<dyn FnOnce() + Send>;

struct Queue {
    jobs: std::collections::VecDeque<Job>,
    in_flight: usize,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    work_ready: Condvar,
    idle: Condvar,
}

/// A completion-worker handle for commit-time asynchronous I/O.
pub struct AsyncIo {
    shared: Arc<Shared>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl fmt::Debug for AsyncIo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AsyncIo").field("pending", &self.pending()).finish()
    }
}

impl AsyncIo {
    /// Start a completion worker.
    pub fn new() -> Arc<AsyncIo> {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: std::collections::VecDeque::new(),
                in_flight: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
        });
        let worker_shared = shared.clone();
        let worker = std::thread::Builder::new()
            .name("xcall-asyncio".into())
            .spawn(move || loop {
                let job = {
                    let mut q = worker_shared.queue.lock();
                    loop {
                        if let Some(job) = q.jobs.pop_front() {
                            q.in_flight += 1;
                            break job;
                        }
                        if q.shutdown {
                            return;
                        }
                        worker_shared.work_ready.wait(&mut q);
                    }
                };
                job();
                let mut q = worker_shared.queue.lock();
                q.in_flight -= 1;
                if q.jobs.is_empty() && q.in_flight == 0 {
                    worker_shared.idle.notify_all();
                }
            })
            .expect("spawn asyncio worker");
        Arc::new(AsyncIo { shared, worker: Mutex::new(Some(worker)) })
    }

    /// Submit `operation` (the long-latency I/O) with `completion` to run
    /// on its result. The submission itself is **deferred until `txn`
    /// commits** — an aborted transaction never issues the operation. Both
    /// closures run on the completion worker, outside any transaction;
    /// the completion typically opens its own atomic block.
    ///
    /// # Errors
    ///
    /// Infallible today (defer is pure); fallible for x-call uniformity.
    pub fn x_submit<T: Send + 'static>(
        self: &Arc<Self>,
        txn: &mut Txn,
        operation: impl FnOnce() -> T + Send + 'static,
        completion: impl FnOnce(T) + Send + 'static,
    ) -> StmResult<()> {
        txfix_stm::obs::note_xcall();
        // Chaos: fail the submission before the deferral is registered; the
        // retried transaction submits exactly once.
        if !txn.is_irrevocable() && chaos::should_inject(chaos::InjectionPoint::XcallAsync) {
            return Err(txfix_stm::Abort::Restart);
        }
        let this = self.clone();
        txn.on_commit(move || {
            this.enqueue(Box::new(move || completion(operation())));
        });
        Ok(())
    }

    /// Submit directly (non-transactional callers).
    pub fn submit(self: &Arc<Self>, job: impl FnOnce() + Send + 'static) {
        self.enqueue(Box::new(job));
    }

    fn enqueue(&self, job: Job) {
        let mut q = self.shared.queue.lock();
        assert!(!q.shutdown, "AsyncIo used after shutdown");
        q.jobs.push_back(job);
        drop(q);
        self.shared.work_ready.notify_one();
    }

    /// Operations queued or executing.
    pub fn pending(&self) -> usize {
        let q = self.shared.queue.lock();
        q.jobs.len() + q.in_flight
    }

    /// Block until every submitted operation (and its completion) has
    /// finished, or `timeout` elapses. Returns whether the queue drained.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.queue.lock();
        while !q.jobs.is_empty() || q.in_flight > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.shared.idle.wait_for(&mut q, deadline - now);
        }
        true
    }

    /// Stop the worker after the queue drains.
    pub fn shutdown(&self) {
        {
            let mut q = self.shared.queue.lock();
            q.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        if let Some(h) = self.worker.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for AsyncIo {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock();
            q.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        // Do not join in drop (C-DTOR-BLOCK): `shutdown` is the blocking
        // teardown; the detached worker exits on its own.
        if let Some(h) = self.worker.lock().take() {
            drop(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
    use txfix_stm::{atomic, TVar};

    #[test]
    fn committed_submission_runs_and_completes() {
        let aio = AsyncIo::new();
        let done = Arc::new(AtomicBool::new(false));
        let d = done.clone();
        let aio2 = aio.clone();
        atomic(move |txn| {
            let d = d.clone();
            aio2.x_submit(txn, || 21, move |r| d.store(r == 21, Ordering::SeqCst))
        });
        assert!(aio.drain(Duration::from_secs(5)));
        assert!(done.load(Ordering::SeqCst));
        aio.shutdown();
    }

    #[test]
    fn aborted_submission_never_runs() {
        let aio = AsyncIo::new();
        let ran = Arc::new(AtomicU32::new(0));
        let first = AtomicBool::new(true);
        let (a, r) = (aio.clone(), ran.clone());
        atomic(move |txn| {
            let r = r.clone();
            a.x_submit(
                txn,
                || (),
                move |()| {
                    r.fetch_add(1, Ordering::SeqCst);
                },
            )?;
            if first.swap(false, Ordering::SeqCst) {
                return txn.restart();
            }
            Ok(())
        });
        assert!(aio.drain(Duration::from_secs(5)));
        assert_eq!(ran.load(Ordering::SeqCst), 1, "exactly the committed attempt runs");
        aio.shutdown();
    }

    #[test]
    fn completions_publish_through_their_own_transactions() {
        // The Mozilla#19421 shape: a short transaction marks 'loading' and
        // submits; the completion opens its own transaction to publish.
        let aio = AsyncIo::new();
        let state = TVar::new("idle");
        let st = state.clone();
        let a = aio.clone();
        atomic(move |txn| {
            st.write(txn, "loading")?;
            let st2 = st.clone();
            a.x_submit(
                txn,
                || "payload",
                move |_payload| {
                    atomic(|txn| st2.write(txn, "loaded"));
                },
            )
        });
        assert!(aio.drain(Duration::from_secs(5)));
        assert_eq!(state.load(), "loaded");
        aio.shutdown();
    }

    #[test]
    fn other_transactions_progress_during_a_long_operation() {
        // The property plain TM cannot provide (§5.3.2): a long-latency
        // operation in flight must not block unrelated transactions.
        let aio = AsyncIo::new();
        let unrelated = TVar::new(0u32);
        let release = Arc::new(AtomicBool::new(false));

        let rel = release.clone();
        let a = aio.clone();
        atomic(move |txn| {
            let rel = rel.clone();
            a.x_submit(
                txn,
                move || {
                    // A "URL load" that takes a while.
                    while !rel.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                },
                |_| {},
            )
        });

        // While the load is in flight, unrelated transactions commit freely.
        for _ in 0..100 {
            atomic(|txn| unrelated.modify(txn, |v| v + 1));
        }
        assert_eq!(unrelated.load(), 100);
        assert_eq!(aio.pending(), 1, "the long operation is still in flight");

        release.store(true, Ordering::SeqCst);
        assert!(aio.drain(Duration::from_secs(5)));
        aio.shutdown();
    }

    #[test]
    fn drain_times_out_when_work_is_stuck() {
        let aio = AsyncIo::new();
        let release = Arc::new(AtomicBool::new(false));
        let rel = release.clone();
        aio.submit(move || {
            while !rel.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
        });
        assert!(!aio.drain(Duration::from_millis(30)));
        release.store(true, Ordering::SeqCst);
        assert!(aio.drain(Duration::from_secs(5)));
        aio.shutdown();
    }

    #[test]
    fn submissions_run_in_commit_order() {
        let aio = AsyncIo::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..10 {
            let (a, l) = (aio.clone(), log.clone());
            atomic(move |txn| {
                let l = l.clone();
                a.x_submit(txn, move || i, move |v| l.lock().push(v))
            });
        }
        assert!(aio.drain(Duration::from_secs(5)));
        assert_eq!(*log.lock(), (0..10).collect::<Vec<_>>());
        aio.shutdown();
    }
}
