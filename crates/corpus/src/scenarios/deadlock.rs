//! The 7 implemented deadlock reproductions.

use super::{BugScenario, Outcome, Variant};
use crate::dataset::keys;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;
use txfix_apps::apache::{run_apache1, Apache1Config, Apache1Variant};
use txfix_apps::spidermonkey::{
    run_script_workload, ObjectStore, OwnershipMode, OwnershipStore, ScriptParams, StmStore,
};
use txfix_core::{preemptible, PreemptOptions};
use txfix_stm::{atomic, TVar};
use txfix_txlock::TxMutex;

pub(super) fn scenarios() -> Vec<Box<dyn BugScenario>> {
    vec![
        Box::new(MozillaI),
        Box::new(CacheAtomTable),
        Box::new(ThreeLockCycle),
        Box::new(IntentionalRace),
        Box::new(ApacheI),
        Box::new(LocalLockOrder),
        Box::new(MySqlTablePair),
    ]
}

/// Run `f` on two threads with a barrier-pinned racy window.
fn two_threads(f: impl Fn(usize, &Barrier) + Sync) {
    let barrier = Barrier::new(2);
    std::thread::scope(|s| {
        for t in 0..2 {
            let f = &f;
            let barrier = &barrier;
            s.spawn(move || f(t, barrier));
        }
    });
}

// ---------------------------------------------------------------------------
// Mozilla-I: SpiderMonkey title-locking deadlock (paper §5.4.1).
// ---------------------------------------------------------------------------

struct MozillaI;

impl BugScenario for MozillaI {
    fn key(&self) -> &'static str {
        keys::MOZILLA_I
    }

    fn describe(&self) -> &'static str {
        "claiming an object's scope while holding setSlotLock deadlocks against the scope's \
         blocked owner; Recipe 1 deletes the ownership protocol entirely"
    }

    fn run(&self, variant: Variant) -> Outcome {
        match variant {
            Variant::Buggy => {
                // Forced interleaving of Figure 2: each thread owns one
                // object, then both simultaneously move a value into the
                // other's object — claiming its scope while holding
                // setSlotLock, whose other claimant is blocked behind it.
                let store = Arc::new(
                    OwnershipStore::new(OwnershipMode::Buggy, 2, 1)
                        .with_claim_timeout(Duration::from_millis(40)),
                );
                let barrier = Barrier::new(2);
                std::thread::scope(|s| {
                    for t in 0..2usize {
                        let store = store.clone();
                        let barrier = &barrier;
                        s.spawn(move || {
                            store.set_slot(t, t, 0, t as i64 + 1);
                            barrier.wait();
                            store.move_slot(t, t, 1 - t, 0);
                        });
                    }
                });
                if store.deadlock_timeouts() > 0 {
                    Outcome::BugObserved(format!(
                        "{} ownership claims deadlocked behind setSlotLock",
                        store.deadlock_timeouts()
                    ))
                } else {
                    Outcome::Correct
                }
            }
            Variant::DevFix => {
                // Developers' fix: drop ownership before blocking. Same
                // contention, plus a longer free-running phase.
                let store = Arc::new(
                    OwnershipStore::new(OwnershipMode::DevFix, 2, 1)
                        .with_claim_timeout(Duration::from_millis(400)),
                );
                std::thread::scope(|s| {
                    for t in 0..2usize {
                        let store = store.clone();
                        s.spawn(move || {
                            for _ in 0..50 {
                                store.set_slot(t, t, 0, t as i64 + 1);
                                store.move_slot(t, t, 1 - t, 0);
                            }
                            store.quiesce(t);
                        });
                    }
                });
                if store.deadlock_timeouts() == 0 {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved(format!(
                        "{} claims still deadlocked under the developer fix",
                        store.deadlock_timeouts()
                    ))
                }
            }
            Variant::TmFix => {
                // Recipe 1: the ownership protocol is deleted; the same
                // interpreter workload runs on atomic regions.
                let params = ScriptParams {
                    threads: 2,
                    objects_per_thread: 2,
                    slots: 2,
                    shared_objects: 2,
                    iterations: 2_000,
                    cross_object_period: 8,
                    compute_ns: 0,
                };
                let store = StmStore::uninstrumented(params.total_objects(), params.slots);
                let r = run_script_workload(&store, &params);
                if r.abandoned == 0 {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved(format!("{} moves abandoned", r.abandoned))
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Mozilla#54743: cache lock vs. atom-table lock AB-BA inversion.
// ---------------------------------------------------------------------------

struct CacheAtomTable;

impl BugScenario for CacheAtomTable {
    fn key(&self) -> &'static str {
        keys::DL_CACHE_ATOMTABLE
    }

    fn describe(&self) -> &'static str {
        "cache and atom-table locks acquired in opposite orders by two subsystems; \
         Recipe 1 replaces both with atomic regions"
    }

    fn run(&self, variant: Variant) -> Outcome {
        match variant {
            Variant::Buggy => {
                let cache = Arc::new(TxMutex::new("m54743.cache", 0u64));
                let atoms = Arc::new(TxMutex::new("m54743.atomtable", 0u64));
                let hit = AtomicU64::new(0);
                two_threads(|t, barrier| {
                    let (first, second) = if t == 0 { (&cache, &atoms) } else { (&atoms, &cache) };
                    let g1 = first.lock().expect("first lock is cycle-free");
                    barrier.wait();
                    match second.lock() {
                        Ok(_g2) => {}
                        Err(_) => {
                            hit.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    drop(g1);
                });
                if hit.load(Ordering::SeqCst) > 0 {
                    Outcome::BugObserved("AB-BA cycle on cache/atom-table locks".into())
                } else {
                    Outcome::Correct
                }
            }
            Variant::DevFix => {
                // Developers gave up acquiring the second lock on one path
                // (release-and-retry), preventing the cycle.
                let cache = Arc::new(TxMutex::new("m54743d.cache", 0u64));
                let atoms = Arc::new(TxMutex::new("m54743d.atomtable", 0u64));
                two_threads(|t, barrier| {
                    if t == 0 {
                        let mut g1 = cache.lock().expect("no cycle");
                        barrier.wait();
                        let mut g2 = atoms.lock().expect("no cycle");
                        *g1 += 1;
                        *g2 += 1;
                    } else {
                        // Fixed path: acquire in the same (cache-first)
                        // order even though the atom table is the target.
                        barrier.wait();
                        let mut g1 = cache.lock().expect("no cycle");
                        let mut g2 = atoms.lock().expect("no cycle");
                        *g2 += 1;
                        *g1 += 1;
                    }
                });
                Outcome::Correct
            }
            Variant::TmFix => {
                let cache = TVar::new(0u64);
                let atoms = TVar::new(0u64);
                two_threads(|t, barrier| {
                    barrier.wait();
                    for _ in 0..200 {
                        // Both orders are safe inside atomic regions.
                        atomic(|txn| {
                            if t == 0 {
                                cache.modify(txn, |v| v + 1)?;
                                atoms.modify(txn, |v| v + 1)
                            } else {
                                atoms.modify(txn, |v| v + 1)?;
                                cache.modify(txn, |v| v + 1)
                            }
                        });
                    }
                });
                if cache.load() == 400 && atoms.load() == 400 {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved("lost updates after lock replacement".into())
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Mozilla#60303: three locks in a rotating acquisition order.
// ---------------------------------------------------------------------------

struct ThreeLockCycle;

impl BugScenario for ThreeLockCycle {
    fn key(&self) -> &'static str {
        keys::DL_THREE_LOCK_CYCLE
    }

    fn describe(&self) -> &'static str {
        "three threads each take lock i then lock (i+1)%3, forming a three-party cycle"
    }

    fn run(&self, variant: Variant) -> Outcome {
        match variant {
            Variant::Buggy => {
                let locks: Vec<Arc<TxMutex<u32>>> = (0..3)
                    .map(|i| {
                        let name: &'static str = Box::leak(format!("m60303.l{i}").into_boxed_str());
                        Arc::new(TxMutex::new(name, 0))
                    })
                    .collect();
                let barrier = Barrier::new(3);
                let hit = AtomicU64::new(0);
                std::thread::scope(|s| {
                    for t in 0..3usize {
                        let locks = &locks;
                        let barrier = &barrier;
                        let hit = &hit;
                        s.spawn(move || {
                            let g1 = locks[t].lock().expect("first acquisition");
                            barrier.wait();
                            if locks[(t + 1) % 3].lock().is_err() {
                                hit.fetch_add(1, Ordering::SeqCst);
                            }
                            drop(g1);
                        });
                    }
                });
                if hit.load(Ordering::SeqCst) > 0 {
                    Outcome::BugObserved("three-lock rotating cycle detected".into())
                } else {
                    Outcome::Correct
                }
            }
            Variant::DevFix => {
                // Impose a global order: always lowest index first.
                let locks: Vec<Arc<TxMutex<u32>>> = (0..3)
                    .map(|i| {
                        let name: &'static str =
                            Box::leak(format!("m60303d.l{i}").into_boxed_str());
                        Arc::new(TxMutex::new(name, 0))
                    })
                    .collect();
                let barrier = Barrier::new(3);
                std::thread::scope(|s| {
                    for t in 0..3usize {
                        let locks = &locks;
                        let barrier = &barrier;
                        s.spawn(move || {
                            barrier.wait();
                            let (a, b) = (t.min((t + 1) % 3), t.max((t + 1) % 3));
                            let mut ga = locks[a].lock().expect("ordered");
                            let mut gb = locks[b].lock().expect("ordered");
                            *ga += 1;
                            *gb += 1;
                        });
                    }
                });
                Outcome::Correct
            }
            Variant::TmFix => {
                let cells: Vec<TVar<u32>> = (0..3).map(|_| TVar::new(0)).collect();
                let barrier = Barrier::new(3);
                std::thread::scope(|s| {
                    for t in 0..3usize {
                        let cells = &cells;
                        let barrier = &barrier;
                        s.spawn(move || {
                            barrier.wait();
                            for _ in 0..100 {
                                atomic(|txn| {
                                    cells[t].modify(txn, |v| v + 1)?;
                                    cells[(t + 1) % 3].modify(txn, |v| v + 1)
                                });
                            }
                        });
                    }
                });
                let total: u32 = cells.iter().map(|c| c.load()).sum();
                if total == 600 {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved(format!("expected 600 increments, saw {total}"))
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Mozilla#123930: developers traded the deadlock for a data race.
// ---------------------------------------------------------------------------

struct IntentionalRace;

impl BugScenario for IntentionalRace {
    fn key(&self) -> &'static str {
        keys::DL_INTENTIONAL_RACE
    }

    fn describe(&self) -> &'static str {
        "frustrated developers removed a lock acquisition to break the cycle, shipping a \
         data race; the TM fix gets atomicity AND deadlock-freedom"
    }

    fn run(&self, variant: Variant) -> Outcome {
        const ROUNDS: u64 = 200;
        match variant {
            Variant::Buggy => {
                let state = Arc::new(TxMutex::new("m123930.state", 0u64));
                let observer = Arc::new(TxMutex::new("m123930.observer", 0u64));
                let hit = AtomicU64::new(0);
                two_threads(|t, barrier| {
                    let (first, second) =
                        if t == 0 { (&state, &observer) } else { (&observer, &state) };
                    let g = first.lock().expect("first acquisition");
                    barrier.wait();
                    if second.lock().is_err() {
                        hit.fetch_add(1, Ordering::SeqCst);
                    }
                    drop(g);
                });
                if hit.load(Ordering::SeqCst) > 0 {
                    Outcome::BugObserved("state/observer lock cycle detected".into())
                } else {
                    Outcome::Correct
                }
            }
            Variant::DevFix => {
                // The shipped fix: the observer path stops taking the state
                // lock and reads the counter unsynchronized. No deadlock —
                // but the update below is a read-modify-write race (the new
                // bug the paper calls out). This scenario only checks the
                // deadlock property, as the developers' own tests did.
                let state = Arc::new(AtomicU64::new(0));
                let observer = Arc::new(TxMutex::new("m123930d.observer", 0u64));
                two_threads(|_t, barrier| {
                    barrier.wait();
                    for _ in 0..ROUNDS {
                        let v = state.load(Ordering::Relaxed);
                        let mut g = observer.lock().expect("single lock");
                        *g += 1;
                        state.store(v + 1, Ordering::Relaxed); // the data race
                    }
                });
                Outcome::Correct
            }
            Variant::TmFix => {
                let state = TVar::new(0u64);
                let observer = TVar::new(0u64);
                two_threads(|_t, barrier| {
                    barrier.wait();
                    for _ in 0..ROUNDS {
                        atomic(|txn| {
                            state.modify(txn, |v| v + 1)?;
                            observer.modify(txn, |v| v + 1)
                        });
                    }
                });
                if state.load() == 2 * ROUNDS && observer.load() == 2 * ROUNDS {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved("atomic replacement lost updates".into())
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Apache-I: listener/worker lock-and-wait deadlock (paper §5.4.2).
// ---------------------------------------------------------------------------

struct ApacheI;

impl BugScenario for ApacheI {
    fn key(&self) -> &'static str {
        keys::APACHE_I
    }

    fn describe(&self) -> &'static str {
        "listener waits for an idle worker while holding the timeout mutex the workers \
         need; Recipe 3 makes the mutex revocable and replaces the wait with retry"
    }

    fn run(&self, variant: Variant) -> Outcome {
        let v = match variant {
            Variant::Buggy => Apache1Variant::Buggy,
            Variant::DevFix => Apache1Variant::DevFix,
            Variant::TmFix => Apache1Variant::TmFix,
        };
        let cfg = Apache1Config { variant: v, workers: 3, connections: 120, ..Default::default() };
        let out = run_apache1(&cfg);
        if out.deadlocked {
            Outcome::BugObserved(format!(
                "lock/wait deadlock after {} of {} connections",
                out.completed, cfg.connections
            ))
        } else if out.completed == cfg.connections {
            Outcome::Correct
        } else {
            Outcome::BugObserved(format!(
                "only {} of {} connections completed",
                out.completed, cfg.connections
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// Apache: lock-order inversion fixable by a local swap (dev-preferred).
// ---------------------------------------------------------------------------

struct LocalLockOrder;

impl BugScenario for LocalLockOrder {
    fn key(&self) -> &'static str {
        keys::DL_LOCAL_LOCK_ORDER
    }

    fn describe(&self) -> &'static str {
        "both acquisitions live in one function, so the developers' one-line order swap \
         is as easy as TM — the case where the paper favors the lock fix"
    }

    fn run(&self, variant: Variant) -> Outcome {
        match variant {
            Variant::Buggy => {
                let a = Arc::new(TxMutex::new("a11600.mutex_a", 0u64));
                let b = Arc::new(TxMutex::new("a11600.mutex_b", 0u64));
                let hit = AtomicU64::new(0);
                two_threads(|t, barrier| {
                    let (first, second) = if t == 0 { (&a, &b) } else { (&b, &a) };
                    let g = first.lock().expect("first acquisition");
                    barrier.wait();
                    if second.lock().is_err() {
                        hit.fetch_add(1, Ordering::SeqCst);
                    }
                    drop(g);
                });
                if hit.load(Ordering::SeqCst) > 0 {
                    Outcome::BugObserved("local AB-BA cycle detected".into())
                } else {
                    Outcome::Correct
                }
            }
            Variant::DevFix => {
                let a = Arc::new(TxMutex::new("a11600d.mutex_a", 0u64));
                let b = Arc::new(TxMutex::new("a11600d.mutex_b", 0u64));
                two_threads(|_t, barrier| {
                    barrier.wait();
                    for _ in 0..100 {
                        // One-line fix: same order on both paths.
                        let mut ga = a.lock().expect("ordered");
                        let mut gb = b.lock().expect("ordered");
                        *ga += 1;
                        *gb += 1;
                    }
                });
                if *a.lock().unwrap() == 200 {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved("updates lost under ordered locking".into())
                }
            }
            Variant::TmFix => {
                let a = TVar::new(0u64);
                let b = TVar::new(0u64);
                two_threads(|t, barrier| {
                    barrier.wait();
                    for _ in 0..100 {
                        atomic(|txn| {
                            if t == 0 {
                                a.modify(txn, |v| v + 1)?;
                                b.modify(txn, |v| v + 1)
                            } else {
                                b.modify(txn, |v| v + 1)?;
                                a.modify(txn, |v| v + 1)
                            }
                        });
                    }
                });
                if a.load() == 200 && b.load() == 200 {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved("atomic replacement lost updates".into())
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// MySQL: storage-engine table-pair inversion, fixed with Recipe 3.
// ---------------------------------------------------------------------------

struct MySqlTablePair;

impl BugScenario for MySqlTablePair {
    fn key(&self) -> &'static str {
        keys::DL_MYSQL_TABLE_PAIR
    }

    fn describe(&self) -> &'static str {
        "a join locks tables in query order while maintenance locks them in index order; \
         the TM fix keeps the table locks but acquires them preemptibly"
    }

    fn run(&self, variant: Variant) -> Outcome {
        let t1 = Arc::new(TxMutex::new("my3155.table1", Vec::<u64>::new()));
        let t2 = Arc::new(TxMutex::new("my3155.table2", Vec::<u64>::new()));
        match variant {
            Variant::Buggy => {
                let hit = AtomicU64::new(0);
                two_threads(|t, barrier| {
                    let (first, second) = if t == 0 { (&t1, &t2) } else { (&t2, &t1) };
                    let mut g = first.lock().expect("first acquisition");
                    g.push(t as u64);
                    barrier.wait();
                    if second.lock().is_err() {
                        hit.fetch_add(1, Ordering::SeqCst);
                    }
                    drop(g);
                });
                if hit.load(Ordering::SeqCst) > 0 {
                    Outcome::BugObserved("table-pair lock cycle detected".into())
                } else {
                    Outcome::Correct
                }
            }
            Variant::DevFix => {
                two_threads(|t, barrier| {
                    barrier.wait();
                    for i in 0..50u64 {
                        // Canonical index order on both paths.
                        let mut g1 = t1.lock().expect("ordered");
                        let mut g2 = t2.lock().expect("ordered");
                        g1.push(t as u64 * 1000 + i);
                        g2.push(t as u64 * 1000 + i);
                    }
                });
                let n = t1.lock().unwrap().len();
                if n == 100 {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved(format!("expected 100 rows, saw {n}"))
                }
            }
            Variant::TmFix => {
                // Recipe 3: both query paths keep their natural lock order
                // but acquire revocably; cycles preempt one side.
                two_threads(|t, barrier| {
                    barrier.wait();
                    for i in 0..50u64 {
                        preemptible(&PreemptOptions::default(), |txn| {
                            let (first, second) = if t == 0 { (&t1, &t2) } else { (&t2, &t1) };
                            first.lock_tx(txn)?;
                            second.lock_tx(txn)?;
                            first.with_held(|rows| rows.push(t as u64 * 1000 + i));
                            second.with_held(|rows| rows.push(t as u64 * 1000 + i));
                            Ok(())
                        })
                        .expect("preemptible join cannot fail terminally");
                    }
                });
                let n1 = t1.lock().unwrap().len();
                let n2 = t2.lock().unwrap().len();
                if n1 == 100 && n2 == 100 {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved(format!("row counts {n1}/{n2}, expected 100/100"))
                }
            }
        }
    }
}
