//! PCT-style randomized priority scheduling (Burckhardt et al.,
//! "A Randomized Scheduler with Probabilistic Guarantees of Finding
//! Bugs", ASPLOS 2010).
//!
//! Each schedule assigns every thread a random priority and always runs
//! the highest-priority runnable thread; `depth - 1` priority *change
//! points* are scattered over the expected step range, and when the step
//! counter crosses one, the currently running thread's priority drops
//! below everyone's, forcing a preemption exactly there. A bug of
//! preemption depth `d` is found with probability ≥ 1/(n·k^(d-1)) per
//! schedule, so a seeded loop of a few hundred schedules reliably digs
//! out shallow races — without enumerating the whole space like DFS.
//!
//! Everything derives deterministically from `(seed, schedule index)` via
//! the same splitmix64 mix the chaos layer uses, so a failing schedule
//! replays from its decision trace alone.

use txfix_stm::chaos::splitmix64;
use txfix_stm::sched::{Pick, Picker};

/// Tuning for the PCT strategy.
#[derive(Clone, Copy, Debug)]
pub struct PctParams {
    /// Base seed; each schedule mixes in its index.
    pub seed: u64,
    /// The preemption bound `d`: number of priority change points + 1.
    pub depth: u32,
    /// A hint for how many scheduling steps a run takes; change points
    /// are scattered uniformly over `[1, steps_hint]`.
    pub steps_hint: u64,
}

impl Default for PctParams {
    fn default() -> Self {
        PctParams { seed: 0, depth: 3, steps_hint: 64 }
    }
}

/// Build the picker for schedule number `index` of a PCT run.
pub fn pct_picker(params: PctParams, index: u64) -> Picker {
    let base = splitmix64(params.seed ^ splitmix64(index.wrapping_add(0x9E37_79B9)));
    // Priority change points (step numbers). Duplicates are harmless —
    // the drop just fires once.
    let changes: Vec<u64> = (0..params.depth.saturating_sub(1) as u64)
        .map(|k| splitmix64(base ^ (0xC0FF_EE00 + k)) % params.steps_hint.max(1) + 1)
        .collect();
    let mut step: u64 = 0;
    let mut demotions: u64 = 0;
    // Per-slot priority overrides from change-point demotions; base
    // priorities derive statically from the seed. Demoted priorities are
    // below every base priority, and later demotions rank below earlier
    // ones (the PCT ordering).
    let mut demoted: Vec<Option<u64>> = Vec::new();
    Box::new(move |cands| {
        step += 1;
        let prio = |slot: usize, demoted: &[Option<u64>]| -> u64 {
            match demoted.get(slot).copied().flatten() {
                Some(d) => d,
                // Keep base priorities above the demotion band.
                None => (splitmix64(base ^ (slot as u64)) | (1 << 63)).max(1 << 63),
            }
        };
        // Highest-priority runnable candidate.
        let best = |demoted: &[Option<u64>]| -> usize {
            let mut bi = 0;
            for i in 1..cands.len() {
                if prio(cands[i].0, demoted) > prio(cands[bi].0, demoted) {
                    bi = i;
                }
            }
            bi
        };
        let mut choice = best(&demoted);
        if changes.contains(&step) {
            // Demote the thread that would run; later demotions sink lower.
            let slot = cands[choice].0;
            if demoted.len() <= slot {
                demoted.resize(slot + 1, None);
            }
            demotions += 1;
            demoted[slot] = Some(u64::MAX / 2 - demotions);
            choice = best(&demoted);
        }
        Pick::Choose(choice)
    })
}
