//! Abort reasons and result types used throughout the STM runtime.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Why a transactional operation could not proceed.
///
/// Values of this type flow out of transactional reads, writes and lock
/// acquisitions via [`StmResult`] and are interpreted by the retry loop in
/// [`TxnBuilder::try_run`](crate::TxnBuilder::try_run). User code normally
/// just propagates them with `?`; the runtime decides whether to retry,
/// block or give up.
#[derive(Clone, Debug)]
pub enum Abort {
    /// A conflict with a concurrent transaction was detected (read-set
    /// validation failed, or an ownership record was held by another
    /// transaction). The runtime re-executes the transaction after backoff.
    Conflict(ConflictKind),
    /// The user requested [`Txn::retry`](crate::Txn::retry): abort and block
    /// until another transaction commits a change to a variable this
    /// transaction has read, then re-execute.
    Retry,
    /// The user requested an explicit abort followed by an immediate
    /// re-execution ([`Txn::restart`](crate::Txn::restart)). This is the
    /// paper's `abort` statement used to preempt a deadlocking transaction.
    Restart,
    /// The user cancelled the transaction; the retry loop returns
    /// [`TxnError::Cancelled`] without re-executing.
    Cancel,
    /// The transaction was chosen as a deadlock victim by the lock runtime
    /// and must release its revocable resources. Re-executed after
    /// exponential backoff so the other deadlocked threads can progress.
    Deadlock,
    /// The transaction was killed by an external party (e.g. a deadlock
    /// detector observing a cycle through this transaction's locks).
    Killed,
    /// A hardware-model capacity bound (read-set or write-set size) was
    /// exceeded. Surfaced as [`TxnError::Capacity`] so hybrid-TM policies
    /// can fall back to software or to a global lock.
    Capacity(CapacityKind),
    /// Commit the work done so far, then block on the given wait point and
    /// re-execute once signalled. This implements *commit-before-wait*
    /// transactional condition variables.
    Wait(Arc<dyn WaitPoint>),
}

impl fmt::Display for Abort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Abort::Conflict(k) => write!(f, "transaction conflict: {k}"),
            Abort::Retry => write!(f, "transaction requested retry"),
            Abort::Restart => write!(f, "transaction requested restart"),
            Abort::Cancel => write!(f, "transaction cancelled"),
            Abort::Deadlock => write!(f, "transaction aborted as deadlock victim"),
            Abort::Killed => write!(f, "transaction killed externally"),
            Abort::Capacity(k) => write!(f, "hardware capacity exceeded: {k}"),
            Abort::Wait(_) => write!(f, "transaction committing before wait"),
        }
    }
}

/// The specific conflict that forced an abort.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConflictKind {
    /// A variable in the read set changed after it was read.
    ReadValidation,
    /// An ownership record was locked by a concurrent committing
    /// transaction and did not become free within the spin bound.
    OrecBusy,
}

impl fmt::Display for ConflictKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConflictKind::ReadValidation => write!(f, "read-set validation failed"),
            ConflictKind::OrecBusy => write!(f, "ownership record busy"),
        }
    }
}

/// Which hardware capacity bound was exceeded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CapacityKind {
    /// Too many distinct locations read.
    ReadSet,
    /// Too many distinct locations written.
    WriteSet,
}

impl fmt::Display for CapacityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapacityKind::ReadSet => write!(f, "read set"),
            CapacityKind::WriteSet => write!(f, "write set"),
        }
    }
}

/// Result type of transactional operations.
pub type StmResult<T> = Result<T, Abort>;

/// A blocking point used by *commit-before-wait* condition variables.
///
/// [`Abort::Wait`] carries one of these. The runtime calls [`prepare`] while
/// the transaction's effects are still private, commits, and only then calls
/// [`wait`] with the returned ticket. Implementations must guarantee that a
/// notification issued at any time after `prepare` returns causes `wait` to
/// return (no lost wakeups).
///
/// [`prepare`]: WaitPoint::prepare
/// [`wait`]: WaitPoint::wait
pub trait WaitPoint: Send + Sync {
    /// Register interest and return a wakeup ticket.
    fn prepare(&self) -> u64;
    /// Block until a notification newer than `ticket` arrives, or until an
    /// implementation-defined timeout elapses (to guarantee progress).
    fn wait(&self, ticket: u64);
}

impl fmt::Debug for dyn WaitPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WaitPoint")
    }
}

/// Terminal error returned by [`TxnBuilder::try_run`](crate::TxnBuilder::try_run).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxnError {
    /// The transaction body requested cancellation via
    /// [`Txn::cancel`](crate::Txn::cancel).
    Cancelled,
    /// The transaction did not commit within
    /// [`TxnBuilder::max_attempts`](crate::TxnBuilder::max_attempts).
    RetryLimit {
        /// Number of attempts performed.
        attempts: u64,
    },
    /// A capacity bound of the (modelled) hardware TM was exceeded.
    Capacity {
        /// Which bound was exceeded.
        kind: CapacityKind,
        /// Number of attempts performed, including the failing one.
        attempts: u64,
    },
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Cancelled => write!(f, "transaction cancelled by user"),
            TxnError::RetryLimit { attempts } => {
                write!(f, "transaction exceeded retry limit after {attempts} attempts")
            }
            TxnError::Capacity { kind, attempts } => {
                write!(f, "transaction exceeded hardware {kind} capacity after {attempts} attempts")
            }
        }
    }
}

impl Error for TxnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let cases: Vec<String> = vec![
            Abort::Conflict(ConflictKind::ReadValidation).to_string(),
            Abort::Conflict(ConflictKind::OrecBusy).to_string(),
            Abort::Retry.to_string(),
            Abort::Restart.to_string(),
            Abort::Cancel.to_string(),
            Abort::Deadlock.to_string(),
            Abort::Killed.to_string(),
            Abort::Capacity(CapacityKind::ReadSet).to_string(),
            TxnError::Cancelled.to_string(),
            TxnError::RetryLimit { attempts: 3 }.to_string(),
            TxnError::Capacity { kind: CapacityKind::WriteSet, attempts: 2 }.to_string(),
        ];
        for c in cases {
            assert!(!c.is_empty());
            assert!(c.chars().next().unwrap().is_lowercase(), "{c}");
        }
    }

    #[test]
    fn txn_error_implements_error() {
        fn assert_err<E: Error>() {}
        assert_err::<TxnError>();
    }

    #[test]
    fn abort_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Abort>();
        assert_send_sync::<TxnError>();
    }
}
