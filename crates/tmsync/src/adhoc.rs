//! Ad hoc synchronization primitives.
//!
//! The paper's §6 observes that "ad hoc synchronization, such as ownership
//! flags put in place to avoid the overhead of locking, can be greatly
//! simplified with TM, but requires hardware support to perform well."
//! This module provides the *flag* half of that comparison: the
//! hand-rolled primitives the buggy applications use, so scenarios and
//! ablation benchmarks can pit them against transactions.

use parking_lot::{Condvar, Mutex};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// A bare "done" flag synchronized by spinning — the pattern behind many
/// of the studied atomicity violations (no happens-before edge beyond the
/// flag itself, no mutual exclusion around associated data).
#[derive(Debug, Default)]
pub struct SpinFlag {
    flag: AtomicBool,
}

impl SpinFlag {
    /// Create an unset flag.
    pub fn new() -> SpinFlag {
        SpinFlag { flag: AtomicBool::new(false) }
    }

    /// Set the flag (release ordering).
    pub fn set(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Clear the flag.
    pub fn clear(&self) {
        self.flag.store(false, Ordering::Release);
    }

    /// Whether the flag is set (acquire ordering).
    pub fn is_set(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Spin until the flag is set or `timeout` elapses; returns whether the
    /// flag was observed set.
    pub fn spin_wait(&self, timeout: Duration) -> bool {
        let start = Instant::now();
        while !self.is_set() {
            if start.elapsed() > timeout {
                return false;
            }
            std::hint::spin_loop();
        }
        true
    }
}

/// A per-object *ownership flag* in the SpiderMonkey style: the first
/// thread to touch the object becomes its exclusive owner and can then
/// access it with **no synchronization at all**; any other thread must
/// block until the owner relinquishes. Cheap in the common
/// single-threaded-object case, and the root of the Mozilla-I deadlock.
pub struct OwnerFlag {
    state: Mutex<OwnerState>,
    released: Condvar,
}

#[derive(Debug, Default)]
struct OwnerState {
    owner: Option<u64>,
    waiters: usize,
}

impl fmt::Debug for OwnerFlag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.state.lock();
        f.debug_struct("OwnerFlag").field("owner", &s.owner).field("waiters", &s.waiters).finish()
    }
}

impl Default for OwnerFlag {
    fn default() -> Self {
        OwnerFlag::new()
    }
}

impl OwnerFlag {
    /// Create an unowned flag.
    pub fn new() -> OwnerFlag {
        OwnerFlag { state: Mutex::new(OwnerState::default()), released: Condvar::new() }
    }

    /// Current owner, if any.
    pub fn owner(&self) -> Option<u64> {
        self.state.lock().owner
    }

    /// Fast path: returns `true` if `thread` already owns the flag or can
    /// take ownership immediately (it was unowned).
    pub fn try_own(&self, thread: u64) -> bool {
        let mut s = self.state.lock();
        match s.owner {
            Some(o) => o == thread,
            None => {
                s.owner = Some(thread);
                true
            }
        }
    }

    /// Slow path: block until ownership can be transferred to `thread`, or
    /// `timeout` elapses. Returns whether ownership was obtained. This is
    /// the *claim* step that, performed while holding other locks, produces
    /// the Mozilla-I deadlock.
    pub fn claim(&self, thread: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut s = self.state.lock();
        s.waiters += 1;
        loop {
            match s.owner {
                None => {
                    s.owner = Some(thread);
                    s.waiters -= 1;
                    return true;
                }
                Some(o) if o == thread => {
                    s.waiters -= 1;
                    return true;
                }
                Some(_) => {
                    let now = Instant::now();
                    if now >= deadline {
                        s.waiters -= 1;
                        return false;
                    }
                    let _ = self.released.wait_for(&mut s, deadline - now);
                }
            }
        }
    }

    /// Whether any thread is blocked in [`claim`](OwnerFlag::claim).
    pub fn has_waiters(&self) -> bool {
        self.state.lock().waiters > 0
    }

    /// Relinquish ownership (the "drop ownership before blocking" step the
    /// Mozilla developers added as their fix).
    pub fn release(&self, thread: u64) {
        let mut s = self.state.lock();
        if s.owner == Some(thread) {
            s.owner = None;
            drop(s);
            self.released.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spin_flag_roundtrip() {
        let f = SpinFlag::new();
        assert!(!f.is_set());
        f.set();
        assert!(f.is_set());
        assert!(f.spin_wait(Duration::from_millis(1)));
        f.clear();
        assert!(!f.spin_wait(Duration::from_millis(10)));
    }

    #[test]
    fn spin_wait_sees_concurrent_set() {
        let f = Arc::new(SpinFlag::new());
        std::thread::scope(|s| {
            let f2 = f.clone();
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                f2.set();
            });
            assert!(f.spin_wait(Duration::from_secs(5)));
        });
    }

    #[test]
    fn first_toucher_owns() {
        let f = OwnerFlag::new();
        assert!(f.try_own(1));
        assert!(f.try_own(1), "owner re-entry must be free");
        assert!(!f.try_own(2));
        assert_eq!(f.owner(), Some(1));
    }

    #[test]
    fn claim_times_out_while_held() {
        let f = OwnerFlag::new();
        assert!(f.try_own(1));
        assert!(!f.claim(2, Duration::from_millis(20)));
    }

    #[test]
    fn release_transfers_ownership_to_claimant() {
        let f = Arc::new(OwnerFlag::new());
        assert!(f.try_own(1));
        std::thread::scope(|s| {
            let f2 = f.clone();
            let h = s.spawn(move || f2.claim(2, Duration::from_secs(5)));
            std::thread::sleep(Duration::from_millis(10));
            assert!(f.has_waiters());
            f.release(1);
            assert!(h.join().unwrap());
        });
        assert_eq!(f.owner(), Some(2));
    }

    #[test]
    fn release_by_non_owner_is_ignored() {
        let f = OwnerFlag::new();
        assert!(f.try_own(1));
        f.release(2);
        assert_eq!(f.owner(), Some(1));
    }
}
