//! Transactional variables.
//!
//! A [`TVar<T>`] is a shared memory cell whose reads and writes, when
//! performed through a [`Txn`](crate::Txn), execute atomically and in
//! isolation with respect to all other transactions. Commit metadata — the
//! version stamp and commit-time writer lock — lives in the striped,
//! cache-line-padded ownership-record table ([`crate::orec`]); a variable
//! holds its creation-order id and a reference to its stripe, in the style
//! of word-based TL2.

use crate::clock;
use crate::error::{Abort, ConflictKind, StmResult};
use crate::notifier;
use crate::orec::{self, Orec, DIRECT_WRITER};
use crate::serial;
use crate::trace;
use parking_lot::RwLock;
use std::any::Any;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Unique identity of a [`TVar`], stable for the life of the process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u64);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tvar#{}", self.0)
    }
}

/// How many times a reader re-checks a busy orec before declaring conflict.
pub(crate) const READ_SPIN: usize = 128;

static NEXT_VAR_ID: AtomicU64 = AtomicU64::new(1);

type Boxed = Arc<dyn Any + Send + Sync>;

/// Shared state of one transactional variable (type-erased).
pub(crate) struct VarInner {
    pub(crate) id: u64,
    /// The ownership record this variable maps to — a stripe of the global
    /// padded table, shared with every id at distance `k·STRIPES`.
    pub(crate) orec: &'static Orec,
    /// Current committed value.
    value: RwLock<Boxed>,
}

impl VarInner {
    fn new(value: Boxed) -> Arc<VarInner> {
        let id = NEXT_VAR_ID.fetch_add(1, Ordering::Relaxed);
        Arc::new(VarInner { id, orec: orec::stripe_for(id), value: RwLock::new(value) })
    }

    /// Lock-free consistent read: returns the value together with the
    /// stripe version it was committed at, or a conflict if the orec stays
    /// busy. The seqlock pattern — version, value, version-and-writer
    /// re-check — guarantees the value belongs to the returned version.
    pub(crate) fn read_consistent(&self) -> StmResult<(Boxed, u64)> {
        for _ in 0..READ_SPIN {
            let w1 = self.orec.writer();
            if w1 != 0 {
                std::hint::spin_loop();
                continue;
            }
            let v1 = self.orec.version();
            let val = self.value.read().clone();
            let v2 = self.orec.version();
            let w2 = self.orec.writer();
            if v1 == v2 && w2 == 0 {
                return Ok((val, v1));
            }
            std::hint::spin_loop();
        }
        Err(Abort::Conflict(ConflictKind::OrecBusy))
    }

    /// Spin until a consistent read succeeds (used by non-transactional
    /// loads, which must not abort).
    pub(crate) fn read_spinning(&self) -> (Boxed, u64) {
        loop {
            if let Ok(r) = self.read_consistent() {
                return r;
            }
            std::thread::yield_now();
        }
    }

    /// Current value without consistency checks — only for the owner of
    /// the orec (eager writers reading their own in-place updates).
    pub(crate) fn read_unchecked(&self) -> Boxed {
        self.value.read().clone()
    }

    /// Replace the value without touching the version — only while the
    /// orec is held (commit write-back, eager in-place writes and their
    /// rollback).
    pub(crate) fn set_value(&self, value: Boxed) {
        *self.value.write() = value;
    }

    /// Non-transactional atomic store (a degenerate single-write commit):
    /// lock the stripe, then stamp (clock rule 1 — lock before stamping).
    fn store_direct(&self, value: Boxed) {
        let _g = serial::shared();
        loop {
            if self.orec.try_lock(DIRECT_WRITER) {
                break;
            }
            std::hint::spin_loop();
        }
        let wv = clock::commit_stamp();
        self.set_value(value);
        self.orec.stamp_release(wv);
        self.orec.unlock(DIRECT_WRITER);
        drop(_g);
        notifier::global().notify();
    }
}

impl fmt::Debug for VarInner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VarInner")
            .field("id", &self.id)
            .field("stripe", &orec::stripe_index(self.id))
            .field("orec", &self.orec)
            .finish()
    }
}

/// A transactional memory cell holding a value of type `T`.
///
/// Cloning a `TVar` clones the *handle*; both handles refer to the same
/// cell. Values are stored behind an `Arc`, so `T` only needs to be `Clone`
/// for callers that want owned copies out of [`read`](TVar::read).
///
/// # Examples
///
/// ```
/// use txfix_stm::{atomic, TVar};
///
/// let balance = TVar::new(100i64);
/// atomic(|txn| {
///     let b = balance.read(txn)?;
///     balance.write(txn, b - 30)
/// });
/// assert_eq!(balance.load(), 70);
/// ```
pub struct TVar<T> {
    inner: Arc<VarInner>,
    _marker: PhantomData<fn(T) -> T>,
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar { inner: self.inner.clone(), _marker: PhantomData }
    }
}

impl<T: fmt::Debug + Send + Sync + Clone + 'static> fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TVar").field("id", &self.id()).field("value", &self.load()).finish()
    }
}

impl<T: Send + Sync + 'static> TVar<T> {
    /// Create a new transactional variable with initial value `value`.
    pub fn new(value: T) -> TVar<T> {
        TVar { inner: VarInner::new(Arc::new(value)), _marker: PhantomData }
    }

    /// Stable unique identity of this variable.
    pub fn id(&self) -> VarId {
        VarId(self.inner.id)
    }

    /// Read a shared handle to the current value inside a transaction.
    ///
    /// Unlike [`read`](TVar::read) this never clones `T`; use it for large
    /// values.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflict; propagate with `?`.
    pub fn read_arc(&self, txn: &mut crate::Txn) -> StmResult<Arc<T>> {
        let boxed = txn.read_raw(&self.inner)?;
        Ok(downcast::<T>(boxed))
    }

    /// Replace the value inside a transaction. The write is buffered and
    /// becomes visible to other threads only if the transaction commits.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflict or capacity overflow.
    pub fn write(&self, txn: &mut crate::Txn, value: T) -> StmResult<()> {
        txn.write_raw(&self.inner, Arc::new(value))
    }

    /// Non-transactional atomic snapshot of the value.
    ///
    /// Consistent (never observes a torn or in-flight commit) but does not
    /// participate in any transaction's conflict detection.
    pub fn load_arc(&self) -> Arc<T> {
        crate::sched::yield_point(crate::sched::SyncOp::SharedRead(
            self.inner.id | crate::sched::VAR_TAG,
        ));
        self.trace_direct(trace::AccessKind::Read);
        let (boxed, _) = self.inner.read_spinning();
        downcast::<T>(boxed)
    }

    /// Non-transactional atomic store. Equivalent to a tiny transaction
    /// that writes just this variable.
    pub fn store(&self, value: T) {
        crate::sched::yield_point(crate::sched::SyncOp::SharedWrite(
            self.inner.id | crate::sched::VAR_TAG,
        ));
        self.trace_direct(trace::AccessKind::Write);
        self.inner.store_direct(Arc::new(value));
    }

    // Non-transactional TVar operations are single-variable atomic actions
    // (they serialize against commits via the orec), so the trace marks
    // them `atomic`: visible to the analyzer, never part of a race.
    fn trace_direct(&self, kind: trace::AccessKind) {
        if !trace::is_enabled() {
            return;
        }
        trace::emit(trace::EventKind::SharedAccess {
            object: self.inner.id,
            name: format!("tvar#{}", self.inner.id),
            kind,
            atomic: true,
        });
    }
}

impl<T: Clone + Send + Sync + 'static> TVar<T> {
    /// Read the current value inside a transaction.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflict; propagate with `?` so the runtime can
    /// re-execute the transaction.
    pub fn read(&self, txn: &mut crate::Txn) -> StmResult<T> {
        self.read_arc(txn).map(|a| (*a).clone())
    }

    /// Apply `f` to the current value and write the result back, all within
    /// the transaction.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflict or capacity overflow.
    pub fn modify(&self, txn: &mut crate::Txn, f: impl FnOnce(T) -> T) -> StmResult<()> {
        let v = self.read(txn)?;
        self.write(txn, f(v))
    }

    /// Non-transactional atomic read returning an owned copy.
    pub fn load(&self) -> T {
        (*self.load_arc()).clone()
    }
}

impl<T: Default + Send + Sync + 'static> Default for TVar<T> {
    fn default() -> Self {
        TVar::new(T::default())
    }
}

pub(crate) fn downcast<T: Send + Sync + 'static>(boxed: Boxed) -> Arc<T> {
    boxed.downcast::<T>().expect("TVar type confusion: value of unexpected type")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_displayable() {
        let a = TVar::new(0u8);
        let b = TVar::new(0u8);
        assert_ne!(a.id(), b.id());
        assert!(a.id().to_string().starts_with("tvar#"));
    }

    #[test]
    fn load_store_roundtrip() {
        let v = TVar::new(String::from("hello"));
        assert_eq!(v.load(), "hello");
        v.store(String::from("world"));
        assert_eq!(v.load(), "world");
    }

    #[test]
    fn clone_shares_the_cell() {
        let a = TVar::new(1u32);
        let b = a.clone();
        a.store(7);
        assert_eq!(b.load(), 7);
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn store_bumps_stripe_version() {
        let v = TVar::new(0u64);
        let (_, before) = v.inner.read_spinning();
        v.store(1);
        let (_, after) = v.inner.read_spinning();
        assert!(after > before);
    }

    #[test]
    fn validate_detects_version_change() {
        let v = TVar::new(0u64);
        let (_, ver) = v.inner.read_spinning();
        assert!(v.inner.orec.validate(ver, 42));
        v.store(1);
        assert!(!v.inner.orec.validate(ver, 42));
    }

    #[test]
    fn busy_orec_forces_reader_conflict_until_unlocked() {
        let v = TVar::new(0u64);
        assert!(v.inner.orec.try_lock(9));
        assert!(!v.inner.orec.try_lock(10));
        // Busy orec forces readers into conflict after bounded spinning.
        assert!(matches!(v.inner.read_consistent(), Err(Abort::Conflict(ConflictKind::OrecBusy))));
        v.inner.orec.unlock(9);
        assert!(v.inner.read_consistent().is_ok());
    }

    #[test]
    fn concurrent_direct_stores_do_not_tear() {
        let v = TVar::new((0u64, 0u64));
        std::thread::scope(|s| {
            for t in 1..=4u64 {
                let v = v.clone();
                s.spawn(move || {
                    for i in 0..200 {
                        v.store((t * 1000 + i, t * 1000 + i));
                    }
                });
            }
            for _ in 0..500 {
                let (a, b) = v.load();
                assert_eq!(a, b, "torn read");
            }
        });
        let (a, b) = v.load();
        assert_eq!(a, b);
    }

    #[test]
    fn default_matches_type_default() {
        let v: TVar<Vec<u8>> = TVar::default();
        assert!(v.load().is_empty());
    }
}
