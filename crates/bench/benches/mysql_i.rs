//! CS4: MySQL-I (§5.4.4) — delete-all stress across tables, developer fix
//! vs. Recipe 4. Paper shape: atomic/lock serialization runs at ~50%.

use criterion::{criterion_group, criterion_main, Criterion};
use txfix_apps::mysql::{MiniDb, MysqlVariant};

const TABLES: usize = 4;
const OPS: u64 = 100;

fn stress(variant: MysqlVariant) {
    let db = MiniDb::new(variant, TABLES);
    for t in 0..TABLES {
        for i in 0..8 {
            db.insert(t, i, i as i64);
        }
    }
    std::thread::scope(|s| {
        for dt in 0..TABLES {
            let db = &db;
            s.spawn(move || {
                for i in 0..OPS {
                    db.delete_all(dt);
                    db.insert(dt, i, i as i64);
                }
            });
        }
    });
}

fn bench_delete_stress(c: &mut Criterion) {
    let mut g = c.benchmark_group("mysql_i");
    g.sample_size(10);

    g.bench_function("developer_fix_table_lock", |b| b.iter(|| stress(MysqlVariant::DevFix)));
    g.bench_function("recipe4_serialized_atomic", |b| b.iter(|| stress(MysqlVariant::TmRecipe4)));

    g.finish();
}

criterion_group!(benches, bench_delete_stress);
criterion_main!(benches);
