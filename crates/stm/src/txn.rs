//! The transaction descriptor: read/write sets, validation, commit and
//! abort, irrevocability, and integration hooks for external resources
//! (revocable locks, transactional I/O).
//!
//! ## Commit path
//!
//! The lazy (TL2-style) commit is: take the serialization lock shared,
//! lock the write set's orec stripes in canonical (stripe-index) order,
//! obtain a write stamp from the [`crate::clock`] (*after* the locks —
//! rule 1 of the clock safety contract), validate the read set, publish
//! the buffered values, stamp-and-release the stripes. Read-only
//! transactions commit without touching any of that.
//!
//! Set lookups are O(1): a per-transaction 128-bit Bloom filter over each
//! of the read and write sets answers the common misses (first read of a
//! variable, read of a never-written variable) with two bit tests, and a
//! filter hit falls back to a short scan. Repeated reads of the same
//! variable dedup against the existing entry instead of growing the read
//! set, so validation cost is proportional to *distinct* variables read.

use crate::chaos;
use crate::clock;
use crate::contention::BackoffPolicy;
use crate::error::{Abort, CapacityKind, ConflictKind, StmResult, WaitPoint};
use crate::notifier;
use crate::obs;
use crate::obs::SiteId;
use crate::overhead::{charge, OverheadModel};
use crate::sched;
use crate::serial;
use crate::stats;
use crate::trace;
use crate::tvar::{VarInner, READ_SPIN};
use std::any::Any;
use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

type Boxed = Arc<dyn Any + Send + Sync>;
type OrecRef = &'static crate::orec::Orec;

static NEXT_TXN_SERIAL: AtomicU64 = AtomicU64::new(1);

/// Serials are handed to threads in chunks so beginning a transaction does
/// not touch a shared cache line. Uniqueness is all that matters to the
/// consumers (orec writer fields, lockdep nodes, trace identity).
const SERIAL_CHUNK: u64 = 256;

thread_local! {
    /// (next, end] of this thread's unissued serial chunk.
    static SERIAL_POOL: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

fn next_serial() -> u64 {
    SERIAL_POOL.with(|p| {
        let (next, end) = p.get();
        if next == end {
            let base = NEXT_TXN_SERIAL.fetch_add(SERIAL_CHUNK, Ordering::Relaxed);
            p.set((base + 1, base + SERIAL_CHUNK));
            base
        } else {
            p.set((next + 1, end));
            next
        }
    })
}

/// Whether a transaction is *atomic* or *relaxed* (paper §5.1, following
/// the C++ TM semantics work it cites).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// May contain only transactionally safe operations; always speculates
    /// and can therefore use `retry`/`restart`.
    #[default]
    Atomic,
    /// May contain unsafe operations (arbitrary side effects) via
    /// [`Txn::unsafe_op`], at the cost of becoming irrevocable.
    Relaxed,
}

/// How transactional writes reach memory.
///
/// The paper's platform (Intel's STM) is *eager*: writes lock their
/// location at encounter time, update in place and keep an undo log, so
/// conflicting readers block/abort immediately. The default here is
/// *lazy* (TL2-style write-back), which buffers writes and publishes at
/// commit. Both policies provide identical atomicity and isolation; they
/// differ in contention behaviour, which `benches/stm_overhead.rs`
/// explores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum WritePolicy {
    /// Buffer writes; acquire ownership records only during commit.
    #[default]
    Lazy,
    /// Acquire ownership records at first write, update in place, keep an
    /// undo log for rollback (encounter-time locking).
    Eager,
}

/// Configuration for one transaction, assembled by
/// [`TxnBuilder`](crate::TxnBuilder). Internal: call sites configure
/// transactions exclusively through the builder.
#[derive(Clone, Debug)]
pub struct TxnOptions {
    /// Atomic (default) or relaxed transaction.
    pub kind: TxnKind,
    /// Lazy write-back (default) or eager in-place writes.
    pub write_policy: WritePolicy,
    /// Give up with [`TxnError::RetryLimit`](crate::TxnError::RetryLimit)
    /// after this many attempts (`None` = unbounded).
    pub max_attempts: Option<u64>,
    /// Inter-attempt contention management.
    pub backoff: BackoffPolicy,
    /// Hardware-model bound on distinct variables read (`None` = unbounded).
    pub read_capacity: Option<usize>,
    /// Hardware-model bound on distinct variables written.
    pub write_capacity: Option<usize>,
    /// Modelled instrumentation cost (see [`OverheadModel`]).
    pub overhead: OverheadModel,
    /// Upper bound on one blocking interval of [`Txn::retry`]; on timeout
    /// the transaction re-executes anyway (guards against missed
    /// notifications in user code).
    pub retry_timeout: Duration,
    /// Metrics attribution site (see [`crate::obs`]).
    pub site: SiteId,
    /// Graceful-degradation ladder (see
    /// [`EscalationPolicy`](crate::EscalationPolicy)); `None` = stay
    /// optimistic forever.
    pub escalation: Option<crate::runtime::EscalationPolicy>,
}

impl Default for TxnOptions {
    fn default() -> Self {
        TxnOptions {
            kind: TxnKind::Atomic,
            write_policy: WritePolicy::default(),
            max_attempts: None,
            backoff: BackoffPolicy::default(),
            read_capacity: None,
            write_capacity: None,
            overhead: OverheadModel::NONE,
            retry_timeout: Duration::from_millis(50),
            site: SiteId::UNATTRIBUTED,
            escalation: None,
        }
    }
}

/// An external resource enlisted in a transaction (e.g. a revocable lock or
/// a transactional file handle). The runtime invokes exactly one of the two
/// callbacks, on the transaction's own thread.
pub trait TxResource: Send + Sync {
    /// The transaction committed; release/apply the resource.
    fn commit(&self, txn_serial: u64);
    /// The transaction aborted; roll the resource back.
    fn abort(&self, txn_serial: u64);
}

/// Shared flag with which an external party (a deadlock detector) can
/// request that a running transaction abort at its next transactional
/// operation.
#[derive(Clone, Debug)]
pub struct KillHandle {
    flag: Arc<AtomicBool>,
    serial: u64,
}

impl KillHandle {
    /// Request the owning transaction abort with [`Abort::Killed`].
    pub fn kill(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether a kill has been requested.
    pub fn is_killed(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Serial number of the transaction attempt this handle refers to.
    pub fn serial(&self) -> u64 {
        self.serial
    }
}

struct ReadEntry {
    orec: OrecRef,
    id: u64,
    version: u64,
}

struct WriteEntry {
    var: Arc<VarInner>,
    value: Boxed,
}

/// Eager-policy record of a location's pre-transaction state.
struct UndoEntry {
    var: Arc<VarInner>,
    old_value: Boxed,
}

/// Two bits per id in a 128-bit Bloom filter; a miss (any bit clear) is a
/// definitive "not in set", a hit falls back to a scan.
#[inline]
fn filter_bits(id: u64) -> u128 {
    let h = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (1u128 << (h >> 57)) | (1u128 << ((h >> 50) & 127))
}

/// A snapshot of a transaction's read set, used to block `retry` until a
/// read variable changes.
pub(crate) struct ReadSnapshot(Vec<(OrecRef, u64)>);

impl ReadSnapshot {
    /// Whether any read stripe has a different committed version than the
    /// one the transaction observed (a busy orec counts as "changing").
    pub(crate) fn changed(&self) -> bool {
        self.0.iter().any(|(o, ver)| o.writer() != 0 || o.version() != *ver)
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// An in-flight memory transaction.
///
/// Obtained from [`atomic`](crate::atomic) and friends; not constructible
/// directly. All transactional reads, writes, lock acquisitions and I/O go
/// through methods that take `&mut Txn`, which statically prevents using a
/// transaction from two threads or after it finished.
pub struct Txn {
    serial: u64,
    rv: u64,
    kind: TxnKind,
    attempt: u64,
    policy: WritePolicy,
    site: SiteId,
    read_set: Vec<ReadEntry>,
    write_set: Vec<WriteEntry>,
    undo_log: Vec<UndoEntry>,
    /// Bloom filter over read-set ids (duplicate-read dedup).
    read_filter: u128,
    /// Bloom filter over written ids (read-after-write lookup); covers
    /// `write_set` under lazy and `undo_log` under eager.
    write_filter: u128,
    commit_hooks: Vec<Box<dyn FnOnce()>>,
    abort_hooks: Vec<Box<dyn FnOnce()>>,
    resources: Vec<Arc<dyn TxResource>>,
    /// Created on first [`kill_handle`](Txn::kill_handle) request; most
    /// transactions never pay the allocation.
    kill_flag: OnceLock<Arc<AtomicBool>>,
    irrevocable: Option<serial::ExclusiveGuard>,
    was_irrevocable: bool,
    read_capacity: Option<usize>,
    write_capacity: Option<usize>,
    overhead: OverheadModel,
    finished: bool,
    /// Canary: this commit already bumped the retry notifier *before*
    /// write-back (the planted reordering), so the normal post-publish
    /// notification must be suppressed to keep the mutation a true
    /// reorder rather than a duplicate.
    #[cfg(feature = "canary-stm")]
    canary_notified_early: bool,
}

impl fmt::Debug for Txn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Txn")
            .field("serial", &self.serial)
            .field("rv", &self.rv)
            .field("kind", &self.kind)
            .field("attempt", &self.attempt)
            .field("reads", &self.read_set.len())
            .field("writes", &self.write_set.len())
            .field("irrevocable", &self.irrevocable.is_some())
            .finish()
    }
}

impl Txn {
    pub(crate) fn begin(opts: &TxnOptions, attempt: u64) -> Txn {
        sched::yield_point(sched::SyncOp::TxnBegin);
        charge(opts.overhead.begin_ns);
        let serial = next_serial();
        trace::emit(trace::EventKind::TxnBegin { serial });
        Txn {
            serial,
            rv: clock::begin_stamp(),
            kind: opts.kind,
            policy: opts.write_policy,
            site: opts.site,
            attempt,
            read_set: Vec::new(),
            write_set: Vec::new(),
            undo_log: Vec::new(),
            read_filter: 0,
            write_filter: 0,
            commit_hooks: Vec::new(),
            abort_hooks: Vec::new(),
            resources: Vec::new(),
            kill_flag: OnceLock::new(),
            irrevocable: None,
            was_irrevocable: false,
            read_capacity: opts.read_capacity,
            write_capacity: opts.write_capacity,
            overhead: opts.overhead,
            finished: false,
            #[cfg(feature = "canary-stm")]
            canary_notified_early: false,
        }
    }

    /// Unique serial number of this transaction attempt.
    pub fn serial(&self) -> u64 {
        self.serial
    }

    /// 1-based attempt number within the enclosing `atomic` call.
    pub fn attempt(&self) -> u64 {
        self.attempt
    }

    /// The transaction's kind (atomic or relaxed).
    pub fn kind(&self) -> TxnKind {
        self.kind
    }

    /// Whether the transaction has become irrevocable.
    pub fn is_irrevocable(&self) -> bool {
        self.irrevocable.is_some()
    }

    /// Whether the transaction became irrevocable at any point in its life
    /// (remains `true` after an irrevocable commit releases the lock).
    pub fn was_irrevocable(&self) -> bool {
        self.was_irrevocable
    }

    /// Number of distinct variables read so far.
    pub fn read_set_len(&self) -> usize {
        self.read_set.len()
    }

    /// Number of distinct variables written so far.
    pub fn write_set_len(&self) -> usize {
        match self.policy {
            WritePolicy::Lazy => self.write_set.len(),
            WritePolicy::Eager => self.undo_log.len(),
        }
    }

    /// A handle external parties (deadlock detectors) can use to abort this
    /// transaction.
    pub fn kill_handle(&self) -> KillHandle {
        let flag = self.kill_flag.get_or_init(|| Arc::new(AtomicBool::new(false)));
        KillHandle { flag: flag.clone(), serial: self.serial }
    }

    /// Check for an external kill request.
    ///
    /// # Errors
    ///
    /// [`Abort::Killed`] if a kill was requested and the transaction is not
    /// irrevocable (an irrevocable transaction can no longer roll back, so
    /// kills are ignored).
    pub fn check_killed(&self) -> StmResult<()> {
        let killed = match self.kill_flag.get() {
            Some(f) => f.load(Ordering::SeqCst),
            None => false,
        };
        if self.irrevocable.is_none() && killed {
            return Err(Abort::Killed);
        }
        Ok(())
    }

    // ---- reads and writes -------------------------------------------------

    /// Index into the written-entry list (`write_set` under lazy,
    /// `undo_log` under eager) for `id`, or `None` — O(1) via the write
    /// Bloom filter for the common miss.
    #[inline]
    fn write_slot(&self, id: u64, bits: u128) -> Option<usize> {
        if self.write_filter & bits != bits {
            return None;
        }
        match self.policy {
            WritePolicy::Lazy => self.write_set.iter().rposition(|w| w.var.id == id),
            WritePolicy::Eager => self.undo_log.iter().rposition(|u| u.var.id == id),
        }
    }

    pub(crate) fn read_raw(&mut self, var: &Arc<VarInner>) -> StmResult<Boxed> {
        // Irrevocable bodies never yield: they hold the global serial lock,
        // so parking them could strand an OS-blocked peer (and serial mode
        // is semantically one atomic step anyway).
        if self.irrevocable.is_none() {
            sched::yield_point(sched::SyncOp::TxnRead(var.id));
        }
        charge(self.overhead.read_ns);
        self.check_killed()?;
        // Chaos: a forced validation failure on the read path. Irrevocable
        // transactions are exempt — like kills — because they cannot roll
        // back.
        if self.irrevocable.is_none() && chaos::should_inject(chaos::InjectionPoint::TxnRead) {
            return Err(Abort::Conflict(ConflictKind::ReadValidation));
        }
        let bits = filter_bits(var.id);
        if let Some(i) = self.write_slot(var.id, bits) {
            self.trace_access(var.id, trace::AccessKind::Read);
            return Ok(match self.policy {
                WritePolicy::Lazy => self.write_set[i].value.clone(),
                // Eager: we own the orec and already wrote in place.
                WritePolicy::Eager => {
                    let _ = i;
                    var.read_unchecked()
                }
            });
        }
        let (value, version) = match var.read_consistent() {
            Ok(r) => r,
            Err(e) => {
                obs::note_orec_conflict(var.id);
                return Err(e);
            }
        };
        if version > self.rv {
            self.extend_rv(version)?;
            if version > self.rv {
                // The clock could not be extended past the observed stamp
                // (only possible across clock-mode transitions); the read
                // may be stale.
                obs::note_orec_conflict(var.id);
                return Err(Abort::Conflict(ConflictKind::ReadValidation));
            }
        }
        // Duplicate read: dedup against the existing entry instead of
        // growing the read set.
        if self.read_filter & bits == bits {
            if let Some(e) = self.read_set.iter().rev().find(|e| e.id == var.id) {
                if e.version == version {
                    self.trace_access(var.id, trace::AccessKind::Read);
                    return Ok(value);
                }
                // The stripe moved since the first read of this variable:
                // the recorded entry can no longer validate, so the
                // transaction is doomed — abort now instead of at commit.
                obs::note_orec_conflict(var.id);
                return Err(Abort::Conflict(ConflictKind::ReadValidation));
            }
        }
        if let Some(cap) = self.read_capacity {
            if self.read_set.len() >= cap {
                return Err(Abort::Capacity(CapacityKind::ReadSet));
            }
        }
        self.read_set.push(ReadEntry { orec: var.orec, id: var.id, version });
        self.read_filter |= bits;
        self.trace_access(var.id, trace::AccessKind::Read);
        Ok(value)
    }

    pub(crate) fn write_raw(&mut self, var: &Arc<VarInner>, value: Boxed) -> StmResult<()> {
        if self.irrevocable.is_none() {
            sched::yield_point(sched::SyncOp::TxnWrite(var.id));
        }
        charge(self.overhead.write_ns);
        self.check_killed()?;
        let bits = filter_bits(var.id);
        if let Some(i) = self.write_slot(var.id, bits) {
            match self.policy {
                WritePolicy::Lazy => self.write_set[i].value = value,
                WritePolicy::Eager => var.set_value(value),
            }
            self.trace_access(var.id, trace::AccessKind::Write);
            return Ok(());
        }
        if let Some(cap) = self.write_capacity {
            if self.write_set_len() >= cap {
                return Err(Abort::Capacity(CapacityKind::WriteSet));
            }
        }
        match self.policy {
            WritePolicy::Lazy => {
                self.write_set.push(WriteEntry { var: var.clone(), value });
            }
            WritePolicy::Eager => {
                // Encounter-time locking: take the stripe now (bounded
                // spin; an immediate hit if we already own it through a
                // stripe-sharing variable), snapshot the old value for
                // rollback, update in place. The version stays untouched
                // until commit, so concurrent readers either see the old
                // consistent state (before the lock) or treat the busy
                // orec as a conflict.
                if !var.orec.try_lock_spinning(self.serial, READ_SPIN) {
                    obs::note_orec_conflict(var.id);
                    return Err(Abort::Conflict(ConflictKind::OrecBusy));
                }
                let old_value = var.read_unchecked();
                var.set_value(value);
                self.undo_log.push(UndoEntry { var: var.clone(), old_value });
            }
        }
        self.write_filter |= bits;
        self.trace_access(var.id, trace::AccessKind::Write);
        Ok(())
    }

    #[inline]
    fn trace_access(&self, var: u64, kind: trace::AccessKind) {
        trace::emit(trace::EventKind::TxnAccess { serial: self.serial, var, kind });
    }

    /// Attempt to advance the read version to at least `target` by raising
    /// the clock and revalidating every read made so far (TL2 lazy
    /// snapshot extension).
    fn extend_rv(&mut self, target: u64) -> StmResult<()> {
        let new_rv = clock::advance_to(target);
        for e in &self.read_set {
            if !e.orec.validate(e.version, self.serial) {
                obs::note_orec_conflict(e.id);
                return Err(Abort::Conflict(ConflictKind::ReadValidation));
            }
        }
        self.rv = new_rv;
        Ok(())
    }

    // ---- control flow ------------------------------------------------------

    /// Abort and block until another transaction changes a variable in this
    /// transaction's read set, then re-execute (Harris-style `retry`; the
    /// paper uses it to replace condition-variable waits in Recipe 3).
    ///
    /// Returns an `Err` unconditionally so it composes with `?`:
    /// `return txn.retry();`.
    ///
    /// # Panics
    ///
    /// Panics if the transaction is irrevocable — an inevitable transaction
    /// cannot speculate and therefore cannot roll back to wait.
    pub fn retry<T>(&mut self) -> StmResult<T> {
        assert!(
            self.irrevocable.is_none(),
            "retry inside an irrevocable transaction is not possible: it cannot roll back"
        );
        Err(Abort::Retry)
    }

    /// Explicitly abort and immediately re-execute (the paper's `abort`
    /// statement).
    ///
    /// # Panics
    ///
    /// Panics if the transaction is irrevocable.
    pub fn restart<T>(&mut self) -> StmResult<T> {
        assert!(
            self.irrevocable.is_none(),
            "restart inside an irrevocable transaction is not possible: it cannot roll back"
        );
        Err(Abort::Restart)
    }

    /// Abort and make the enclosing [`try_run`](crate::TxnBuilder::try_run)
    /// return [`TxnError::Cancelled`](crate::TxnError::Cancelled) without
    /// re-executing.
    ///
    /// # Panics
    ///
    /// Panics if the transaction is irrevocable.
    pub fn cancel<T>(&mut self) -> StmResult<T> {
        assert!(
            self.irrevocable.is_none(),
            "cancel inside an irrevocable transaction is not possible: it cannot roll back"
        );
        Err(Abort::Cancel)
    }

    /// Commit the transaction's effects so far, block on `wp`, and
    /// re-execute the body once signalled (commit-before-wait).
    ///
    /// Returns an `Err` unconditionally so it composes with `?`.
    pub fn wait_on<T>(&mut self, wp: Arc<dyn WaitPoint>) -> StmResult<T> {
        Err(Abort::Wait(wp))
    }

    /// Make the transaction irrevocable (inevitable): it can no longer
    /// abort, and all other commits are excluded until it finishes. Used
    /// before operations whose side effects cannot be rolled back.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] if the read set is no longer valid at the moment
    /// of the switch (the transaction re-executes and can try again).
    pub fn become_irrevocable(&mut self) -> StmResult<()> {
        if self.irrevocable.is_some() {
            return Ok(());
        }
        self.check_killed()?;
        let guard = serial::exclusive();
        // With the serial lock held exclusively no commit is in flight, so
        // validation is stable.
        for e in &self.read_set {
            if !e.orec.validate(e.version, self.serial) {
                drop(guard);
                return Err(Abort::Conflict(ConflictKind::ReadValidation));
            }
        }
        self.rv = clock::now();
        self.irrevocable = Some(guard);
        self.was_irrevocable = true;
        stats::bump_irrevocable();
        obs::note_irrevocable(self.site);
        Ok(())
    }

    /// Run an operation with arbitrary, non-undoable side effects.
    ///
    /// Only allowed in [`TxnKind::Relaxed`] transactions; makes the
    /// transaction irrevocable first, so the side effect happens at most
    /// once.
    ///
    /// # Errors
    ///
    /// Propagates the conflict from [`become_irrevocable`](Txn::become_irrevocable).
    ///
    /// # Panics
    ///
    /// Panics if called inside a [`TxnKind::Atomic`] transaction; atomic
    /// transactions must contain only transactionally safe operations.
    pub fn unsafe_op<T>(&mut self, f: impl FnOnce() -> T) -> StmResult<T> {
        assert_eq!(
            self.kind,
            TxnKind::Relaxed,
            "unsafe operation inside an atomic transaction; use a relaxed transaction \
             or a transactionally safe equivalent (xcall)"
        );
        self.become_irrevocable()?;
        Ok(f())
    }

    // ---- hooks and resources ----------------------------------------------

    /// Register an action to run if (and only if) the transaction commits,
    /// after its writes are published. Actions run in registration order —
    /// this is what deferred transactional I/O relies on.
    pub fn on_commit(&mut self, f: impl FnOnce() + 'static) {
        self.commit_hooks.push(Box::new(f));
    }

    /// Register a compensating action to run if the transaction aborts.
    /// Actions run in reverse registration order (undo-log order).
    pub fn on_abort(&mut self, f: impl FnOnce() + 'static) {
        self.abort_hooks.push(Box::new(f));
    }

    /// Enlist an external resource; exactly one of
    /// [`TxResource::commit`]/[`TxResource::abort`] will be called.
    pub fn enlist(&mut self, resource: Arc<dyn TxResource>) {
        self.resources.push(resource);
    }

    // ---- lifecycle ---------------------------------------------------------

    pub(crate) fn take_read_snapshot(&self) -> ReadSnapshot {
        ReadSnapshot(self.read_set.iter().map(|e| (e.orec, e.version)).collect())
    }

    /// The write set's stripes, deduplicated, in canonical (stripe-index)
    /// order — the commit lock order.
    fn commit_stripes(entries: impl Iterator<Item = OrecRef>) -> Vec<OrecRef> {
        let mut stripes: Vec<OrecRef> = entries.collect();
        stripes.sort_by_key(|o| o.index());
        stripes.dedup_by_key(|o| o.index());
        stripes
    }

    /// Attempt to commit. On success all writes are published atomically,
    /// resources are committed and commit hooks run. On failure the caller
    /// must invoke [`abort`](Txn::abort).
    pub(crate) fn commit(&mut self) -> StmResult<()> {
        assert!(!self.finished, "transaction used after completion");
        // One yield before the whole validate-lock-publish sequence: a TL2
        // commit is linearizable, so it is a single step at scheduler
        // granularity and never parks holding orecs or the serial lock.
        if self.irrevocable.is_none() {
            sched::yield_point(sched::SyncOp::TxnCommit);
        }
        charge(
            self.overhead.commit_ns
                + self.overhead.commit_per_entry_ns
                    * (self.read_set.len() + self.write_set.len()) as u64,
        );
        // Note: the kill flag is deliberately NOT checked here. A kill is an
        // advisory deadlock-breaking signal; a transaction that reached its
        // commit point is no longer blocking anyone, and validation decides
        // whether the commit is consistent. Aborting at commit would also
        // re-execute non-isolated lock-protected mutations (Recipe 3 uses
        // transactions "only for rollback and not isolation").

        if self.irrevocable.is_some() {
            self.publish_irrevocable();
            return Ok(());
        }

        // Chaos: a forced abort on entry to commit, before any orec is
        // taken (models losing validation to a racing committer).
        if chaos::should_inject(chaos::InjectionPoint::TxnPreCommit) {
            return Err(Abort::Conflict(ConflictKind::ReadValidation));
        }

        if self.policy == WritePolicy::Eager {
            return self.commit_eager();
        }

        if self.write_set.is_empty() {
            // Read-only: every read was validated against rv when made (and
            // on each rv extension), so the snapshot is already consistent.
            self.finish_success(false);
            return Ok(());
        }

        let guard = serial::shared();

        // Lock stripes in canonical order so committer/committer deadlock
        // is structurally impossible.
        let stripes = Self::commit_stripes(self.write_set.iter().map(|w| w.var.orec));
        for (k, o) in stripes.iter().enumerate() {
            if !o.try_lock(self.serial) {
                let busy = o.index();
                if let Some(w) = self.write_set.iter().find(|w| w.var.orec.index() == busy) {
                    obs::note_orec_conflict(w.var.id);
                }
                for locked in &stripes[..k] {
                    locked.unlock(self.serial);
                }
                drop(guard);
                return Err(Abort::Conflict(ConflictKind::OrecBusy));
            }
        }

        // Write stamp *after* the locks (clock safety contract, rule 1).
        let wv = clock::commit_stamp();

        // Canary: commit with a stale version stamp — publish the values
        // but leave every stripe at its *pre-commit* version, so a
        // concurrent reader's validation still matches and the conflict
        // goes unseen.
        #[cfg(feature = "canary-stm")]
        let stale_stamp = crate::canary::fire(crate::canary::Canary::StmStaleStamp);

        for e in &self.read_set {
            // Canary: skip read-set validation for this orec — a stale
            // read no longer aborts the commit.
            #[cfg(feature = "canary-stm")]
            if crate::canary::fire(crate::canary::Canary::StmSkipValidation) {
                continue;
            }
            if !e.orec.validate(e.version, self.serial) {
                obs::note_orec_conflict(e.id);
                for locked in &stripes {
                    locked.unlock(self.serial);
                }
                drop(guard);
                return Err(Abort::Conflict(ConflictKind::ReadValidation));
            }
        }

        // Chaos: die at the worst possible moment — validated, orecs
        // locked, nothing published yet. The unlock path below must leave
        // no trace of the attempt.
        if chaos::should_inject(chaos::InjectionPoint::TxnWriteback) {
            for locked in &stripes {
                locked.unlock(self.serial);
            }
            drop(guard);
            return Err(Abort::Conflict(ConflictKind::OrecBusy));
        }

        // Canary: bump the retry notifier *before* the write-back loop
        // (and suppress the normal post-publish bump): a retrying waiter
        // can wake, revalidate against the still-unpublished state, and
        // sleep through the only wakeup for the real update.
        #[cfg(feature = "canary-stm")]
        if crate::canary::fire(crate::canary::Canary::StmNotifyReorder) {
            notifier::global().notify();
            self.canary_notified_early = true;
        }

        for w in &self.write_set {
            // Canary: skip this TVar's write-back entirely — the
            // transaction still reports success (silent lost update).
            #[cfg(feature = "canary-stm")]
            if crate::canary::fire(crate::canary::Canary::StmSkipWriteback) {
                continue;
            }
            w.var.set_value(w.value.clone());
        }
        #[cfg(feature = "canary-stm")]
        let do_stamp = !stale_stamp;
        #[cfg(not(feature = "canary-stm"))]
        let do_stamp = true;
        if do_stamp {
            for o in &stripes {
                o.stamp_release(wv);
            }
        }
        for o in &stripes {
            o.unlock(self.serial);
        }
        drop(guard);

        self.finish_success(true);
        Ok(())
    }

    /// Commit an eager transaction: stripes are already held and values are
    /// in place; validate reads, stamp the new version, release.
    fn commit_eager(&mut self) -> StmResult<()> {
        if self.undo_log.is_empty() {
            self.finish_success(false);
            return Ok(());
        }
        // `try_shared`, not `shared`: this transaction already holds orec
        // stripes from encounter time, and blocking here while an
        // irrevocable transaction drains the lock would deadlock against
        // its publication spinning on our stripes. Aborting instead is
        // always safe (rollback releases the stripes) and the runtime
        // re-executes.
        let Some(guard) = serial::try_shared() else {
            return Err(Abort::Conflict(ConflictKind::OrecBusy));
        };
        // Write stamp after the (encounter-time) locks: rule 1 holds.
        let wv = clock::commit_stamp();
        for e in &self.read_set {
            if !e.orec.validate(e.version, self.serial) {
                obs::note_orec_conflict(e.id);
                drop(guard);
                return Err(Abort::Conflict(ConflictKind::ReadValidation));
            }
        }
        // Chaos: abort with every in-place write still applied; the
        // caller's rollback_eager must restore old values and release the
        // orecs.
        if chaos::should_inject(chaos::InjectionPoint::TxnWriteback) {
            drop(guard);
            return Err(Abort::Conflict(ConflictKind::OrecBusy));
        }
        let stripes = Self::commit_stripes(self.undo_log.iter().map(|u| u.var.orec));
        for o in &stripes {
            o.stamp_release(wv);
            o.unlock(self.serial);
        }
        self.undo_log.clear();
        drop(guard);
        self.finish_success(true);
        Ok(())
    }

    /// Roll an eager transaction's in-place writes back to their
    /// pre-transaction values and release the orecs.
    fn rollback_eager(&mut self) {
        if self.undo_log.is_empty() {
            return;
        }
        let stripes = Self::commit_stripes(self.undo_log.iter().map(|u| u.var.orec));
        for u in self.undo_log.drain(..).rev() {
            u.var.set_value(u.old_value);
        }
        for o in &stripes {
            o.unlock(self.serial);
        }
    }

    fn publish_irrevocable(&mut self) {
        let wrote = !self.write_set.is_empty() || !self.undo_log.is_empty();
        if wrote {
            // Lock the stripes even though the exclusive serial lock
            // excludes every other *commit*: non-transactional readers use
            // the stripe seqlock, and publishing a value without the lock
            // can hand them a new value under the old version stamp. The
            // only possible holders are eager transactions still in their
            // bodies (encounter-time locks are taken outside the serial
            // lock); they cannot commit past `try_shared` while we hold
            // the lock exclusively, so they either roll back (releasing
            // the stripe) or spin behind us — progress is guaranteed.
            // Under the cooperative scheduler threads interleave only at
            // yield points, so the seqlock race cannot occur and spinning
            // on a parked holder would hang the schedule: skip the locks
            // there, matching the single-step semantics.
            let lock_stripes = !sched::is_controlled();
            let wv = clock::commit_stamp();
            let stripes = Self::commit_stripes(self.write_set.iter().map(|w| w.var.orec));
            if lock_stripes {
                for o in &stripes {
                    let mut spins = 0u32;
                    while !o.try_lock(self.serial) {
                        spins += 1;
                        if spins.is_multiple_of(64) {
                            std::thread::yield_now();
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                }
            }
            for w in &self.write_set {
                w.var.set_value(w.value.clone());
            }
            for o in &stripes {
                o.stamp_release(wv);
                if lock_stripes {
                    o.unlock(self.serial);
                }
            }
            // Eager irrevocable: stripes already held from encounter time.
            if !self.undo_log.is_empty() {
                let eager = Self::commit_stripes(self.undo_log.iter().map(|u| u.var.orec));
                for o in &eager {
                    o.stamp_release(wv);
                    o.unlock(self.serial);
                }
                self.undo_log.clear();
            }
        }
        self.irrevocable = None; // release the exclusive guard
        self.finish_success(wrote);
    }

    fn finish_success(&mut self, wrote: bool) {
        self.finished = true;
        trace::emit(trace::EventKind::TxnCommit { serial: self.serial });
        // Deferred actions (e.g. x-call I/O) run first, while enlisted
        // resources — revocable locks in particular — are still held, so
        // the deferred effects stay inside the isolation the locks provide.
        for h in self.commit_hooks.drain(..) {
            h();
        }
        for r in self.resources.drain(..) {
            r.commit(self.serial);
        }
        self.abort_hooks.clear();
        #[cfg(feature = "canary-stm")]
        let wrote = wrote && !std::mem::replace(&mut self.canary_notified_early, false);
        if wrote {
            notifier::global().notify();
        }
        stats::bump_commits();
    }

    /// Roll back: release resources and run compensations. Safe to call at
    /// most once; the runtime does this for every non-committed outcome.
    pub(crate) fn abort(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        trace::emit(trace::EventKind::TxnAbort { serial: self.serial });
        // An irrevocable transaction normally cannot reach here (its commit
        // is infallible and retry/restart/cancel panic first), but a panic
        // unwinding through the body can: writes are still only buffered at
        // that point, so releasing the serial lock and compensating is safe.
        self.irrevocable = None;
        // Eager in-place writes are rolled back first, so no other thread
        // can observe this transaction's values once the orecs unlock.
        self.rollback_eager();
        // Compensations run in reverse (undo-log) order while resources —
        // locks — are still held, then the resources are rolled back.
        for h in self.abort_hooks.drain(..).rev() {
            h();
        }
        for r in self.resources.drain(..).rev() {
            r.abort(self.serial);
        }
        self.commit_hooks.clear();
        self.read_set.clear();
        self.write_set.clear();
        self.read_filter = 0;
        self.write_filter = 0;
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        if !self.finished {
            // A panic unwound through the transaction body: roll back so
            // locks and compensations are not leaked.
            self.abort();
        }
    }
}
