//! Transactional file handles: deferred writes with per-transaction
//! isolation.
//!
//! `x_append`/`x_write_at` buffer their effect and apply it when the
//! transaction commits; `x_read` sees committed content plus the
//! transaction's own pending writes. A revocable [`TxMutex`] per file
//! provides isolation between transactions touching the same file until
//! commit, mirroring xCalls' logical file locks.

use crate::crashpoint;
use crate::simos::SimFile;
use std::fmt;
use std::sync::Arc;
use txfix_stm::chaos;
use txfix_stm::{Abort, StmResult, Txn};
use txfix_txlock::TxMutex;

/// A pending (deferred) file mutation.
#[derive(Clone, Debug)]
enum PendingOp {
    Append(Vec<u8>),
    WriteAt(usize, Vec<u8>),
    /// Deferred `fsync`: promote the cache to the durable image when the
    /// preceding deferred writes have been applied.
    Sync,
    /// A crash point evaluated at the matching place in the commit-time
    /// apply sequence — how the WAL plants protocol-level labels like
    /// `wal_after_commit_write` between its deferred writes.
    Marker(&'static str),
}

struct XFileInner {
    file: Arc<SimFile>,
    /// Isolation lock: held (revocably) by the transaction touching the
    /// file, until that transaction finishes.
    lock: TxMutex<PendingState>,
}

#[derive(Default)]
struct PendingState {
    /// Serial of the transaction whose deferred ops are buffered.
    owner: u64,
    ops: Vec<PendingOp>,
}

/// A transactional handle to a [`SimFile`].
///
/// Clones share the same pending state and isolation lock.
///
/// # Examples
///
/// ```
/// use txfix_stm::atomic;
/// use txfix_xcall::{SimFs, XFile};
///
/// let fs = SimFs::new();
/// let log = XFile::open_or_create(&fs, "app.log");
/// let log2 = log.clone();
/// atomic(move |txn| log2.x_append(txn, b"committed\n"));
/// assert_eq!(log.file().read_all(), b"committed\n");
/// ```
#[derive(Clone)]
pub struct XFile {
    inner: Arc<XFileInner>,
}

impl fmt::Debug for XFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("XFile").field("file", &self.inner.file).finish()
    }
}

impl XFile {
    /// Wrap an already-open simulated file.
    pub fn new(file: Arc<SimFile>) -> XFile {
        let lock_name = format!("xfile:{}", file.name());
        XFile {
            inner: Arc::new(XFileInner {
                file,
                lock: TxMutex::new(&lock_name, PendingState::default()),
            }),
        }
    }

    /// Open `path` in `fs`, creating it if needed, as a transactional file.
    pub fn open_or_create(fs: &crate::simos::SimFs, path: &str) -> XFile {
        XFile::new(fs.open_or_create(path))
    }

    /// The underlying simulated file (non-transactional access).
    pub fn file(&self) -> &Arc<SimFile> {
        &self.inner.file
    }

    fn enter(&self, txn: &mut Txn) -> StmResult<()> {
        let inner = self.inner.clone();
        let serial = txn.serial();
        let newly_owned = inner.lock.with_tx(txn, |st| {
            if st.owner == serial {
                false
            } else {
                debug_assert!(st.ops.is_empty(), "pending ops leaked from a previous txn");
                st.owner = serial;
                st.ops.clear();
                true
            }
        })?;
        if newly_owned {
            let apply = self.inner.clone();
            txn.on_commit(move || {
                // The isolation lock is still held here (hooks run before
                // resources are released), so this is race-free.
                unsafe {
                    apply.with_pending(|st| {
                        for op in st.ops.drain(..) {
                            crashpoint::crash_point("xfile_apply");
                            match op {
                                PendingOp::Append(bytes) => apply.file.append(&bytes),
                                PendingOp::WriteAt(off, bytes) => apply.file.write_at(off, &bytes),
                                PendingOp::Sync => {
                                    // Canary: the fsync reports success
                                    // without flushing — acknowledged
                                    // commits silently lose durability,
                                    // visible only across a crash.
                                    #[cfg(feature = "canary-xcall")]
                                    if txfix_stm::canary::fire(
                                        txfix_stm::canary::Canary::WalSkipFsync,
                                    ) {
                                        continue;
                                    }
                                    apply.file.sync_all();
                                }
                                PendingOp::Marker(label) => crashpoint::crash_point(label),
                            }
                        }
                        st.owner = 0;
                    });
                }
            });
            let undo = self.inner.clone();
            txn.on_abort(move || {
                // Canary: the undo never runs — the deferred ops and the
                // ownership stamp of the aborted transaction survive,
                // exactly the "forgot the compensation" bug x-calls exist
                // to prevent. A later transaction entering the file will
                // apply another transaction's buffered writes.
                #[cfg(feature = "canary-xcall")]
                if txfix_stm::canary::fire(txfix_stm::canary::Canary::XcallSkipUndo) {
                    return;
                }
                crashpoint::crash_point("xfile_undo");
                unsafe {
                    undo.with_pending(|st| {
                        st.ops.clear();
                        st.owner = 0;
                    });
                }
            });
        }
        Ok(())
    }

    /// Defer an append until the transaction commits.
    ///
    /// # Errors
    ///
    /// Propagates lock conflicts/preemption as [`Abort`](txfix_stm::Abort).
    pub fn x_append(&self, txn: &mut Txn, bytes: &[u8]) -> StmResult<()> {
        txfix_stm::obs::note_xcall();
        self.enter(txn)?;
        let bytes = bytes.to_vec();
        self.inner.lock.with_tx(txn, move |st| st.ops.push(PendingOp::Append(bytes)))?;
        // Chaos: the op is already buffered, so this abort makes the undo
        // hook clear real state (and release the isolation lock).
        self.inject_io_fault(txn)?;
        Ok(())
    }

    /// Defer an absolute-offset write until the transaction commits.
    ///
    /// # Errors
    ///
    /// Propagates lock conflicts/preemption as [`Abort`](txfix_stm::Abort).
    pub fn x_write_at(&self, txn: &mut Txn, offset: usize, bytes: &[u8]) -> StmResult<()> {
        txfix_stm::obs::note_xcall();
        self.enter(txn)?;
        let bytes = bytes.to_vec();
        self.inner.lock.with_tx(txn, move |st| st.ops.push(PendingOp::WriteAt(offset, bytes)))?;
        self.inject_io_fault(txn)?;
        Ok(())
    }

    /// Defer an `fsync` until the transaction commits: once the deferred
    /// writes queued before it have been applied, the page cache is
    /// promoted to the durable image. Ordering within the transaction is
    /// preserved, so `append; sync; append` leaves the second append
    /// cached but not durable — exactly the handle a write-ahead log's
    /// commit protocol needs.
    ///
    /// # Errors
    ///
    /// Propagates lock conflicts/preemption as [`Abort`](txfix_stm::Abort).
    pub fn x_sync(&self, txn: &mut Txn) -> StmResult<()> {
        txfix_stm::obs::note_xcall();
        self.enter(txn)?;
        self.inner.lock.with_tx(txn, |st| st.ops.push(PendingOp::Sync))?;
        self.inject_io_fault(txn)?;
        Ok(())
    }

    /// Plant a named crash point between this transaction's deferred
    /// operations: it is evaluated at the matching position in the
    /// commit-time apply sequence. Instrumentation only — never faulted
    /// by chaos, free when no crash session is armed.
    ///
    /// # Errors
    ///
    /// Propagates lock conflicts/preemption as [`Abort`](txfix_stm::Abort).
    pub fn x_crash_point(&self, txn: &mut Txn, label: &'static str) -> StmResult<()> {
        self.enter(txn)?;
        self.inner.lock.with_tx(txn, move |st| st.ops.push(PendingOp::Marker(label)))?;
        Ok(())
    }

    /// Read the file as this transaction sees it: committed content with
    /// the transaction's own deferred operations applied.
    ///
    /// # Errors
    ///
    /// Propagates lock conflicts/preemption as [`Abort`](txfix_stm::Abort).
    pub fn x_read_all(&self, txn: &mut Txn) -> StmResult<Vec<u8>> {
        txfix_stm::obs::note_xcall();
        self.enter(txn)?;
        self.inject_io_fault(txn)?;
        let committed = self.inner.file.read_all();
        self.inner.lock.with_tx(txn, move |st| {
            let mut view = committed;
            for op in &st.ops {
                match op {
                    PendingOp::Append(bytes) => view.extend_from_slice(bytes),
                    PendingOp::WriteAt(off, bytes) => {
                        if view.len() < off + bytes.len() {
                            view.resize(off + bytes.len(), 0);
                        }
                        view[*off..off + bytes.len()].copy_from_slice(bytes);
                    }
                    // Neither changes the bytes a reader observes.
                    PendingOp::Sync | PendingOp::Marker(_) => {}
                }
            }
            view
        })
    }

    /// The file length this transaction observes (committed + pending).
    ///
    /// # Errors
    ///
    /// Propagates lock conflicts/preemption as [`Abort`](txfix_stm::Abort).
    pub fn x_len(&self, txn: &mut Txn) -> StmResult<usize> {
        self.x_read_all(txn).map(|v| v.len())
    }

    /// Chaos hook shared by the file x-calls: a synthetic I/O failure that
    /// aborts the transaction, driving the undo hook and the isolation-lock
    /// release. Irrevocable transactions are exempt (they cannot abort).
    fn inject_io_fault(&self, txn: &Txn) -> StmResult<()> {
        if !txn.is_irrevocable() && chaos::should_inject(chaos::InjectionPoint::XcallFile) {
            return Err(Abort::Restart);
        }
        Ok(())
    }

    /// Non-transactional diagnostic peek at the pending buffer: `(owner
    /// serial, buffered op count)`, or `None` while a transaction holds the
    /// isolation lock. After every transaction on the file has finished, a
    /// correct undo path leaves `(0, 0)` — the leak-regression tests assert
    /// exactly that.
    pub fn pending_snapshot(&self) -> Option<(u64, usize)> {
        let guard = self.inner.lock.try_lock()?;
        Some((guard.owner, guard.ops.len()))
    }
}

impl XFileInner {
    /// Run `f` on the pending state from commit/abort hooks.
    ///
    /// # Safety
    ///
    /// Caller must be the thread whose transaction holds the isolation
    /// lock; hooks run on that thread before the lock is released, so this
    /// holds for all internal uses.
    unsafe fn with_pending<R>(&self, f: impl FnOnce(&mut PendingState) -> R) -> R {
        unsafe { f(&mut *self.lock.data_ptr()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simos::SimFs;
    use std::sync::atomic::{AtomicBool, Ordering};
    use txfix_stm::atomic;

    #[test]
    fn append_is_deferred_to_commit() {
        let fs = SimFs::new();
        let xf = XFile::open_or_create(&fs, "log");
        let raw = xf.file().clone();
        let xf2 = xf.clone();
        atomic(move |txn| {
            xf2.x_append(txn, b"line\n")?;
            // Not yet in the file: the write is pending.
            assert!(raw.is_empty());
            Ok(())
        });
        assert_eq!(xf.file().read_all(), b"line\n");
    }

    #[test]
    fn aborted_transaction_leaves_no_trace() {
        let fs = SimFs::new();
        let xf = XFile::open_or_create(&fs, "log");
        let first = AtomicBool::new(true);
        let xf2 = xf.clone();
        atomic(move |txn| {
            xf2.x_append(txn, b"maybe\n")?;
            if first.swap(false, Ordering::SeqCst) {
                return txn.restart();
            }
            Ok(())
        });
        // Only the committed (second) attempt's append is visible.
        assert_eq!(xf.file().read_all(), b"maybe\n");
    }

    #[test]
    fn reads_see_own_pending_writes() {
        let fs = SimFs::new();
        let xf = XFile::open_or_create(&fs, "f");
        xf.file().append(b"committed;");
        let xf2 = xf.clone();
        let view = atomic(move |txn| {
            xf2.x_append(txn, b"pending")?;
            xf2.x_read_all(txn)
        });
        assert_eq!(view, b"committed;pending");
    }

    #[test]
    fn write_at_is_applied_at_commit() {
        let fs = SimFs::new();
        let xf = XFile::open_or_create(&fs, "f");
        xf.file().append(b"aaaa");
        let xf2 = xf.clone();
        atomic(move |txn| xf2.x_write_at(txn, 1, b"XY"));
        assert_eq!(xf.file().read_all(), b"aXYa");
    }

    #[test]
    fn x_sync_applies_in_deferred_order() {
        let fs = SimFs::new();
        let xf = XFile::open_or_create(&fs, "wal");
        let xf2 = xf.clone();
        atomic(move |txn| {
            xf2.x_append(txn, b"durable")?;
            xf2.x_sync(txn)?;
            xf2.x_append(txn, b" cached-only")
        });
        assert_eq!(xf.file().read_all(), b"durable cached-only");
        assert_eq!(
            xf.file().durable_snapshot(),
            b"durable",
            "the fsync must land between the two appends, not after both"
        );
    }

    #[test]
    fn concurrent_transactional_appends_interleave_atomically() {
        let fs = SimFs::new();
        let xf = XFile::open_or_create(&fs, "log");
        std::thread::scope(|s| {
            for t in 0..4u8 {
                let xf = xf.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        let rec = [b'<', b'0' + t, b'>'];
                        let xf2 = xf.clone();
                        atomic(move |txn| {
                            // Two separate x-calls that must land adjacently.
                            xf2.x_append(txn, &rec[..1])?;
                            xf2.x_append(txn, &rec[1..])
                        });
                    }
                });
            }
        });
        let data = xf.file().read_all();
        assert_eq!(data.len(), 4 * 50 * 3);
        for chunk in data.chunks(3) {
            assert_eq!(chunk[0], b'<');
            assert_eq!(chunk[2], b'>', "records interleaved: {chunk:?}");
        }
    }
}
