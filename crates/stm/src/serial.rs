//! The global serialization lock backing irrevocable (inevitable)
//! transactions.
//!
//! Like Intel's STM (paper §5.1), a transaction that must perform an
//! operation with un-undoable side effects "reverts to a global lock":
//! it acquires this lock exclusively, which drains and then excludes all
//! concurrent commits, making the transaction's reads stable and its commit
//! infallible. Ordinary commits hold the lock in shared mode only for the
//! duration of the commit protocol, so revocable transactions continue to
//! run and commit concurrently with each other.

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

static SERIAL: RwLock<()> = RwLock::new(());

/// Shared guard held by ordinary commits while they publish values.
pub(crate) fn shared() -> RwLockReadGuard<'static, ()> {
    SERIAL.read()
}

/// Exclusive guard held by an irrevocable transaction from the moment it
/// becomes inevitable until its commit completes.
pub(crate) fn exclusive() -> RwLockWriteGuard<'static, ()> {
    SERIAL.write()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    #[test]
    fn exclusive_blocks_shared() {
        let g = exclusive();
        let entered = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                let _r = shared();
                entered.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(30));
            assert!(!entered.load(Ordering::SeqCst));
            drop(g);
            // Give the reader time to get the lock.
            for _ in 0..1000 {
                if entered.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            assert!(entered.load(Ordering::SeqCst));
        });
    }

    #[test]
    fn shared_guards_coexist() {
        let _a = shared();
        let _b = shared();
    }
}
