//! Access-fact extraction: walk each path summary and annotate every
//! data access with the protection it runs under.
//!
//! Two protection notions fall out of one walk:
//!
//! - **`race_prot`** — what serializes this access against *other
//!   paths*: the names of held locks, the locks an enclosing atomic
//!   region is serialized with (Recipe 4), and — for any enclosing
//!   atomic region — the shared [`ATOMIC`] token, because the STM
//!   globally serializes transactions against each other. Two accesses
//!   on different paths race when their `race_prot` sets are disjoint.
//! - **`unit_prot`** — what holds *continuously across* this path's
//!   accesses: lock names tagged with an acquisition epoch (bumped on
//!   each acquire and on each `Wait`, which releases the monitor
//!   mid-region) and atomic regions tagged with their instance. Two
//!   accesses in the same path belong to one atomic unit only if their
//!   `unit_prot` sets intersect; a lock released and retaken between
//!   them does not count, which is exactly the dropped-lockset pattern
//!   the atomicity pass looks for.

use crate::ir::{Op, PathSummary, ScenarioSummary};
use std::collections::BTreeSet;

/// The protection token every atomic region contributes to `race_prot`:
/// transactions are serialized against each other regardless of
/// instance. Distinct from any lock name the corpus uses.
pub(crate) const ATOMIC: &str = "$atomic";

/// One data access (Read/Write/Rmw) with its extracted protection.
#[derive(Clone, Debug)]
pub(crate) struct Access {
    /// Index of the path in the summary.
    pub path: usize,
    /// Index of the op within the path.
    pub op: usize,
    /// The location touched.
    pub loc: String,
    /// Whether the access reads the location.
    pub reads: bool,
    /// Whether the access writes the location.
    pub writes: bool,
    /// Whether the access is hardware-atomic (Rmw or atomic Read/Write).
    pub hw_atomic: bool,
    /// Cross-path serialization: lock names, serialized-with locks, and
    /// the shared `$atomic` token.
    pub race_prot: BTreeSet<String>,
    /// Within-path continuity: `lock@epoch` and `$atomic@instance`.
    pub unit_prot: BTreeSet<String>,
    /// Just the real lock names held (no atomic tokens) — used by the
    /// synthesizer to pick which path Recipe 4 should wrap.
    pub locks_held: BTreeSet<String>,
}

/// Extract all access facts from `summary` in path order.
pub(crate) fn accesses(summary: &ScenarioSummary) -> Vec<Access> {
    let mut out = Vec::new();
    for (pi, path) in summary.paths.iter().enumerate() {
        walk_path(pi, path, &mut out);
    }
    out
}

fn walk_path(pi: usize, path: &PathSummary, out: &mut Vec<Access>) {
    // Held locks as (name, epoch); epochs make `unit_prot` entries stale
    // once a lock is released (or dropped inside a Wait) and retaken.
    let mut held: Vec<(String, u64)> = Vec::new();
    let mut next_epoch: u64 = 0;
    // Open atomic regions as (instance, serialized_with).
    let mut regions: Vec<(u64, Vec<String>)> = Vec::new();
    let mut next_instance: u64 = 0;

    for (oi, op) in path.ops.iter().enumerate() {
        match op {
            Op::Acquire { lock, .. } => {
                next_epoch += 1;
                held.push((lock.clone(), next_epoch));
            }
            Op::Release { lock } => {
                if let Some(pos) = held.iter().rposition(|(h, _)| h == lock) {
                    held.remove(pos);
                }
            }
            Op::AtomicBegin { serialized_with } => {
                next_instance += 1;
                regions.push((next_instance, serialized_with.clone()));
            }
            Op::AtomicEnd => {
                regions.pop();
            }
            Op::Wait { monitor, .. } => {
                // The wait releases and reacquires the monitor: any unit
                // that spans it is not continuously protected.
                if let Some(pos) = held.iter().rposition(|(h, _)| h == monitor) {
                    next_epoch += 1;
                    held[pos].1 = next_epoch;
                }
            }
            Op::Read { loc, atomic } | Op::Write { loc, atomic } => {
                let reads = matches!(op, Op::Read { .. });
                out.push(access(pi, oi, loc, reads, !reads, *atomic, &held, &regions));
            }
            Op::Rmw { loc } => {
                out.push(access(pi, oi, loc, true, true, true, &held, &regions));
            }
            Op::Notify { .. } => {}
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn access(
    path: usize,
    op: usize,
    loc: &str,
    reads: bool,
    writes: bool,
    hw_atomic: bool,
    held: &[(String, u64)],
    regions: &[(u64, Vec<String>)],
) -> Access {
    let mut race_prot = BTreeSet::new();
    let mut unit_prot = BTreeSet::new();
    let mut locks_held = BTreeSet::new();
    for (lock, epoch) in held {
        race_prot.insert(lock.clone());
        unit_prot.insert(format!("{lock}@{epoch}"));
        locks_held.insert(lock.clone());
    }
    for (instance, serialized_with) in regions {
        race_prot.insert(ATOMIC.to_string());
        unit_prot.insert(format!("{ATOMIC}@{instance}"));
        for lock in serialized_with {
            // Recipe 4: the region excludes these locks' critical
            // sections, so accesses under those locks cannot interleave
            // with it.
            race_prot.insert(lock.clone());
        }
    }
    Access {
        path,
        op,
        loc: loc.to_string(),
        reads,
        writes,
        hw_atomic,
        race_prot,
        unit_prot,
        locks_held,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Path, Summary};

    #[test]
    fn lock_epochs_break_continuity_across_release() {
        let s = Summary::new("t", "buggy")
            .path(
                Path::new("p")
                    .acquire("l")
                    .read("x")
                    .release("l")
                    .acquire("l")
                    .write("x")
                    .release("l"),
            )
            .build();
        let a = accesses(&s);
        assert_eq!(a.len(), 2);
        // Same race protection (lock name), different unit protection
        // (epochs differ across the release/reacquire).
        assert_eq!(a[0].race_prot, a[1].race_prot);
        assert!(a[0].unit_prot.is_disjoint(&a[1].unit_prot));
    }

    #[test]
    fn wait_bumps_the_monitor_epoch() {
        let s = Summary::new("t", "buggy")
            .path(
                Path::new("p").acquire("m").read("x").wait("cv", "m", "x").write("x").release("m"),
            )
            .build();
        let a = accesses(&s);
        assert!(a[0].unit_prot.is_disjoint(&a[1].unit_prot), "wait must break the unit");
    }

    #[test]
    fn atomic_regions_share_the_race_token_but_not_instances() {
        let s = Summary::new("t", "buggy")
            .path(
                Path::new("p")
                    .atomic_begin()
                    .read("x")
                    .atomic_end()
                    .atomic_begin()
                    .write("x")
                    .atomic_end(),
            )
            .build();
        let a = accesses(&s);
        assert!(a[0].race_prot.contains(ATOMIC));
        assert_eq!(a[0].race_prot, a[1].race_prot);
        assert!(a[0].unit_prot.is_disjoint(&a[1].unit_prot));
    }

    #[test]
    fn serialized_regions_count_the_locks_they_exclude() {
        let s = Summary::new("t", "tm")
            .path(Path::new("p").atomic_serialized(&["l"]).write("x").atomic_end())
            .build();
        let a = accesses(&s);
        assert!(a[0].race_prot.contains("l"));
        assert!(a[0].locks_held.is_empty(), "serialization is not lock ownership");
    }

    #[test]
    fn rmw_reads_and_writes_atomically() {
        let s = Summary::new("t", "dev").path(Path::new("p").rmw("x")).build();
        let a = accesses(&s);
        assert!(a[0].reads && a[0].writes && a[0].hw_atomic);
    }
}
