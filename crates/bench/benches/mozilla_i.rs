//! CS1: Mozilla-I (§5.4.1) — SunSpider-like interpreter workload over the
//! four object-store variants. Paper shape: developer fix ≫ Recipe 1 on
//! software TM (21%); hardware TM recovers parity (99.3%); Recipe 3 sits
//! in between (85%).

use criterion::{criterion_group, criterion_main, Criterion};
use txfix_apps::spidermonkey::{
    run_script_workload, HwModelStore, ObjectStore, OwnershipMode, OwnershipStore, PreemptStore,
    ScriptParams, StmStore,
};

fn params() -> ScriptParams {
    ScriptParams {
        threads: 4,
        objects_per_thread: 8,
        slots: 8,
        shared_objects: 4,
        iterations: 3_000,
        cross_object_period: 64,
        compute_ns: 250,
    }
}

fn bench_variants(c: &mut Criterion) {
    let p = params();
    let total = p.total_objects();
    let mut g = c.benchmark_group("mozilla_i");
    g.sample_size(10);

    let run = |store: &dyn ObjectStore| {
        let r = run_script_workload(store, &p);
        assert_eq!(r.abandoned, 0);
    };

    let dev = OwnershipStore::new(OwnershipMode::DevFix, total, p.slots);
    g.bench_function("developer_fix_ownership", |b| b.iter(|| run(&dev)));

    let sw = StmStore::software(total, p.slots);
    g.bench_function("recipe1_software_tm", |b| b.iter(|| run(&sw)));

    let swe = StmStore::software_eager(total, p.slots);
    g.bench_function("recipe1_software_tm_eager", |b| b.iter(|| run(&swe)));

    let hw = HwModelStore::new(total, p.slots);
    g.bench_function("recipe1_hardware_model", |b| b.iter(|| run(&hw)));

    let pre = PreemptStore::new(total, p.slots);
    g.bench_function("recipe3_preemptible_locks", |b| b.iter(|| run(&pre)));

    g.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
